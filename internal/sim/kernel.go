package sim

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/cat"
	"github.com/faircache/lfoc/internal/metrics"
	"github.com/faircache/lfoc/internal/pmc"
	"github.com/faircache/lfoc/internal/sharing"
	"github.com/faircache/lfoc/internal/sim/scenario"
)

// kernelApp is one application slot. A slot is created at admission and
// never reused; it survives identity resets (the monitoring id changes,
// the slot does not), which is how results stay attributable across the
// paper's restart semantics, fresh-process restarts and departures.
type kernelApp struct {
	slot  int // result index, stable for the app's lifetime
	monID int // policy/monitoring identity; changes on RestartFresh
	spec  *appmodel.Spec
	inst  *appmodel.Instance

	counter  pmc.Counter
	nextWin  uint64 // cumulative instruction threshold for next window
	runInsns uint64
	runStart float64
	runs     []float64
	// fractional accumulators (counters are integers, progress is not)
	fracInsns  float64
	fracCycles float64
	fracMiss   float64
	fracStall  float64
	perf       appmodel.Perf
	share      uint64

	active     bool
	arrivedAt  float64 // scheduled arrival time (trace time)
	admittedAt float64 // when the app actually got a core
	departedAt float64 // negative while in the system

	// Alone-clock: simulated seconds an identical solo run (full LLC,
	// unloaded memory) would have needed for the instructions retired so
	// far. Feeds instantaneous slowdowns for windowed metrics and the
	// slowdown-at-departure of open scenarios.
	aloneT     float64
	alonePhase *appmodel.PhaseSpec
	aloneIPS   float64
}

// equilState is one memoized contention-model fixed point, positional
// over the active apps in slot order.
type equilState struct {
	perfs  []appmodel.Perf
	shares []uint64
}

const equilCacheMax = 4096

// kernel is the scenario-agnostic execution engine: it integrates
// application progress under the contention model, accumulates hardware
// counters, delivers counter windows to the policy, activates the
// partitioner periodically, and consults the scenario for arrivals,
// run-completion outcomes and termination.
type kernel struct {
	cfg Config
	pol Dynamic
	scn scenario.Scenario

	apps      []*kernelApp
	runCounts []int // completed runs per slot (shared with scenario.Progress)
	nActive   int
	nextMonID int
	peak      int

	arrivals []scenario.Arrival
	arrIdx   int
	waitQ    []scenario.Arrival // arrivals waiting for a free core

	eval   *sharing.Evaluator
	shApps []sharing.App
	shRes  []sharing.Result
	equil  map[string]*equilState
	keyBuf []byte

	masks     map[int]cat.WayMask
	perfDirty bool

	aloneIPSCache map[*appmodel.PhaseSpec]float64

	freq float64
	dt   float64

	simTime      float64
	nextPolicy   float64
	repartitions int

	// Windowed-metrics collection (enabled by Config.MetricsWindow).
	collect   bool
	series    metrics.WindowedSeries
	winStart  float64
	winArr    int
	winDep    int
	winRuns   int
	sdScratch []float64
}

// newKernel validates the configuration, admits the scenario's initial
// applications and primes the policy, mirroring the historical
// RunDynamic setup sequence exactly.
func newKernel(cfg Config, scn scenario.Scenario, pol Dynamic) (*kernel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	initial := scn.Initial()
	for _, s := range initial {
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}
	for i, arr := range scn.Arrivals() {
		if arr.Spec == nil {
			return nil, fmt.Errorf("sim: arrival %d without a spec", i)
		}
		if err := arr.Spec.Validate(); err != nil {
			return nil, err
		}
	}

	k := &kernel{
		cfg:           cfg,
		pol:           pol,
		scn:           scn,
		arrivals:      scn.Arrivals(),
		eval:          sharing.NewEvaluator(sharing.NewModel(cfg.Plat)),
		equil:         make(map[string]*equilState),
		masks:         map[int]cat.WayMask{},
		aloneIPSCache: map[*appmodel.PhaseSpec]float64{},
		freq:          float64(cfg.Plat.FreqHz),
		dt:            cfg.PolicyPeriod.Seconds() / float64(cfg.TicksPerPeriod),
		nextPolicy:    cfg.PolicyPeriod.Seconds(),
		perfDirty:     true,
		collect:       cfg.MetricsWindow > 0,
	}
	if k.collect {
		k.series.Width = cfg.MetricsWindow.Seconds()
	}
	if len(initial) > cfg.Plat.Cores {
		// Open-system scenarios (their apps depart and free cores) queue
		// the overflow FIFO, exactly like arrivals on a full machine;
		// everything else — the closed methodology, whose apps never
		// release a core — is rejected up-front as before.
		q, ok := scn.(interface{ QueueInitialOverflow() bool })
		if !ok || !q.QueueInitialOverflow() {
			return nil, fmt.Errorf("sim: %d apps exceed %d cores", len(initial), cfg.Plat.Cores)
		}
	}
	for _, s := range initial {
		if k.nActive < cfg.Plat.Cores {
			if err := k.admit(s, 0); err != nil {
				return nil, err
			}
		} else {
			k.waitQ = append(k.waitQ, scenario.Arrival{Time: 0, Spec: s})
		}
	}
	pol.Reconfigure()
	if err := k.refreshMasks(); err != nil {
		return nil, err
	}
	return k, nil
}

// admit creates a slot for spec and registers it with the policy. The
// caller has verified a core is free.
func (k *kernel) admit(spec *appmodel.Spec, arrivedAt float64) error {
	a := &kernelApp{
		slot:       len(k.apps),
		monID:      k.nextMonID,
		spec:       spec,
		inst:       appmodel.NewInstance(spec),
		active:     true,
		arrivedAt:  arrivedAt,
		admittedAt: k.simTime,
		runStart:   k.simTime,
		departedAt: -1,
	}
	k.nextMonID++
	if err := k.pol.AddApp(a.monID); err != nil {
		return err
	}
	a.nextWin = k.pol.WindowInsns(a.monID)
	k.apps = append(k.apps, a)
	k.runCounts = append(k.runCounts, 0)
	k.nActive++
	if k.nActive > k.peak {
		k.peak = k.nActive
	}
	k.winArr++
	k.perfDirty = true
	return nil
}

// depart removes an application from the system, releasing its core and
// its policy state, and back-fills the core from the wait queue.
func (k *kernel) depart(a *kernelApp) error {
	a.active = false
	a.departedAt = k.simTime
	k.nActive--
	k.winDep++
	k.pol.RemoveApp(a.monID)
	k.perfDirty = true
	for len(k.waitQ) > 0 && k.nActive < k.cfg.Plat.Cores {
		arr := k.waitQ[0]
		k.waitQ = k.waitQ[1:]
		if err := k.admit(arr.Spec, arr.Time); err != nil {
			return err
		}
	}
	return nil
}

// refreshIdentity gives the slot a brand-new monitoring identity: the
// policy sees the old process exit and a new one spawn, so class and
// history are re-learned from scratch.
func (k *kernel) refreshIdentity(a *kernelApp) error {
	k.pol.RemoveApp(a.monID)
	a.monID = k.nextMonID
	k.nextMonID++
	if err := k.pol.AddApp(a.monID); err != nil {
		return err
	}
	a.counter.Reset()
	a.nextWin = k.pol.WindowInsns(a.monID)
	return nil
}

func (k *kernel) refreshMasks() error {
	m, err := k.pol.Assignment()
	if err != nil {
		return err
	}
	k.masks = m
	k.perfDirty = true
	return nil
}

// refreshPerf re-evaluates the contention-model fixed point over the
// active applications. The equilibrium is a pure function of (per-app
// spec, phase index, mask): restarted applications revisit identical
// configurations constantly and the policy cycles through a small set
// of plans, so memoizing the fixed point pays for itself within a few
// runs; the slot stands in for the spec in the key since a slot's spec
// never changes.
func (k *kernel) refreshPerf() {
	k.shApps = k.shApps[:0]
	for _, a := range k.apps {
		if !a.active {
			continue
		}
		mask := k.masks[a.monID]
		if mask == 0 {
			mask = cat.FullMask(k.cfg.Plat.Ways)
		}
		k.shApps = append(k.shApps, sharing.App{ID: a.monID, Phase: a.inst.Phase(), Mask: mask})
	}
	k.perfDirty = false
	if len(k.shApps) == 0 {
		return
	}
	var key string
	if !k.cfg.noEquilCache {
		k.keyBuf = k.keyBuf[:0]
		idx := 0
		for _, a := range k.apps {
			if !a.active {
				continue
			}
			k.keyBuf = binary.LittleEndian.AppendUint32(k.keyBuf, uint32(a.slot))
			k.keyBuf = binary.LittleEndian.AppendUint32(k.keyBuf, uint32(a.inst.PhaseIndex()))
			k.keyBuf = binary.LittleEndian.AppendUint32(k.keyBuf, uint32(k.shApps[idx].Mask))
			idx++
		}
		key = string(k.keyBuf)
		if st, ok := k.equil[key]; ok {
			idx = 0
			for _, a := range k.apps {
				if !a.active {
					continue
				}
				a.perf = st.perfs[idx]
				a.share = st.shares[idx]
				idx++
			}
			return
		}
	}
	k.shRes = k.eval.EvaluateInto(k.shRes, k.shApps)
	idx := 0
	for _, a := range k.apps {
		if !a.active {
			continue
		}
		a.perf = k.shRes[idx].Perf
		a.share = k.shRes[idx].ShareBytes
		idx++
	}
	if !k.cfg.noEquilCache {
		if len(k.equil) >= equilCacheMax {
			clear(k.equil)
		}
		st := &equilState{
			perfs:  make([]appmodel.Perf, len(k.shApps)),
			shares: make([]uint64, len(k.shApps)),
		}
		idx = 0
		for _, a := range k.apps {
			if !a.active {
				continue
			}
			st.perfs[idx] = a.perf
			st.shares[idx] = a.share
			idx++
		}
		k.equil[key] = st
	}
}

// alonePhaseIPS returns the solo instruction rate (insns/second, full
// LLC, unloaded memory) for a phase, cached per phase spec.
func (k *kernel) alonePhaseIPS(ph *appmodel.PhaseSpec) float64 {
	if ips, ok := k.aloneIPSCache[ph]; ok {
		return ips
	}
	ips := appmodel.PhasePerf(ph, k.cfg.Plat, k.cfg.Plat.LLCBytes(), 1).IPC * k.freq
	k.aloneIPSCache[ph] = ips
	return ips
}

// closeWindow finalizes the current metrics window at the given end
// time and opens the next one.
func (k *kernel) closeWindow(end float64) {
	p := metrics.WindowPoint{
		Start:         k.winStart,
		End:           end,
		Active:        k.nActive,
		Arrivals:      k.winArr,
		Departures:    k.winDep,
		RunsCompleted: k.winRuns,
	}
	if w := end - k.winStart; w > 0 {
		p.Throughput = float64(k.winRuns) / w
	}
	k.sdScratch = k.sdScratch[:0]
	for _, a := range k.apps {
		if !a.active || a.aloneT <= 0 {
			continue
		}
		k.sdScratch = append(k.sdScratch, (end-a.admittedAt)/a.aloneT)
	}
	p.Unfairness, p.STP, p.MeanSlowdown, p.MinSlowdown, p.MaxSlowdown = metrics.SlowdownStats(k.sdScratch)
	p.Samples = len(k.sdScratch)
	k.series.Add(p)
	k.winStart = end
	k.winArr, k.winDep, k.winRuns = 0, 0, 0
}

// progress assembles the scenario's view of the kernel state. Runs
// shares the kernel's storage; scenarios treat it as read-only.
func (k *kernel) progress() scenario.Progress {
	return scenario.Progress{
		Time:    k.simTime,
		Active:  k.nActive,
		Pending: len(k.arrivals) - k.arrIdx + len(k.waitQ),
		Runs:    k.runCounts,
	}
}

// run executes the scenario to completion. The per-tick structure —
// termination check, arrival delivery, equilibrium refresh, time
// advance, per-app integration, mask refresh, partitioner activation,
// metrics windows — keeps the historical closed-methodology operation
// order exactly, so closed runs are bit-identical to the pre-kernel
// monolithic loop (pinned by the golden test).
func (k *kernel) run() error {
	if err := k.runUntil(math.Inf(1)); err != nil {
		return err
	}
	k.finish()
	return nil
}

// runUntil advances the simulation until simTime reaches until or the
// scenario reports done, whichever comes first. It is run's loop with a
// pause point: pausing after a tick and resuming executes exactly the
// operation sequence of an uninterrupted run (the extra `simTime <
// until` test and the repeated Done call are pure), which is what lets
// a cluster interleave placement decisions between ticks of independent
// machines without perturbing any single machine's trajectory.
func (k *kernel) runUntil(until float64) error {
	maxTime := k.cfg.MaxSimTime.Seconds()
	for k.simTime < until && !k.scn.Done(k.progress()) {
		if k.simTime > maxTime {
			return fmt.Errorf("sim: exceeded MaxSimTime (%v) with runs %v", k.cfg.MaxSimTime, k.runCounts)
		}
		// Deliver arrivals that are due; a full machine queues them.
		admitted := false
		for k.arrIdx < len(k.arrivals) && k.arrivals[k.arrIdx].Time <= k.simTime {
			arr := k.arrivals[k.arrIdx]
			k.arrIdx++
			if k.nActive >= k.cfg.Plat.Cores {
				k.waitQ = append(k.waitQ, arr)
				continue
			}
			if err := k.admit(arr.Spec, arr.Time); err != nil {
				return err
			}
			admitted = true
		}
		if admitted {
			if err := k.refreshMasks(); err != nil {
				return err
			}
		}
		if k.perfDirty {
			k.refreshPerf()
		}
		k.simTime += k.dt
		anyChange := false
		for _, a := range k.apps {
			if !a.active {
				continue
			}
			// Progress.
			ips := a.perf.IPC * k.freq
			a.fracInsns += ips * k.dt
			insns := uint64(a.fracInsns)
			a.fracInsns -= float64(insns)
			if insns > 0 {
				// Alone-clock: charge the retired instructions at the
				// solo rate of the phase they retired under (phase
				// boundaries inside one tick are charged to the phase
				// the tick started in — a sub-tick approximation).
				ph := a.inst.Phase()
				if ph != a.alonePhase {
					a.alonePhase = ph
					a.aloneIPS = k.alonePhaseIPS(ph)
				}
				a.aloneT += float64(insns) / a.aloneIPS
				if a.inst.Advance(insns) {
					k.perfDirty = true
				}
			}
			// Counters.
			a.fracCycles += k.freq * k.dt
			cycles := uint64(a.fracCycles)
			a.fracCycles -= float64(cycles)
			a.fracMiss += a.perf.MPKC / 1000 * k.freq * k.dt
			miss := uint64(a.fracMiss)
			a.fracMiss -= float64(miss)
			a.fracStall += a.perf.StallFrac * k.freq * k.dt
			stall := uint64(a.fracStall)
			a.fracStall -= float64(stall)
			a.counter.Add(pmc.Sample{
				Instructions:   insns,
				Cycles:         cycles,
				LLCMisses:      miss,
				LLCAccesses:    miss * 2,
				StallsL2Miss:   stall,
				OccupancyBytes: a.share,
			})
			// Window delivery.
			for a.counter.Total().Instructions >= a.nextWin {
				w := a.counter.ReadWindow()
				if k.pol.OnWindow(a.monID, w) {
					anyChange = true
				}
				a.nextWin = a.counter.Total().Instructions + k.pol.WindowInsns(a.monID)
			}
			// Run completion: the scenario decides the app's fate.
			a.runInsns += insns
			for a.active && a.runInsns >= k.cfg.TargetInsns {
				a.runs = append(a.runs, k.simTime-a.runStart)
				k.runCounts[a.slot]++
				k.winRuns++
				a.runStart = k.simTime
				a.runInsns -= k.cfg.TargetInsns
				switch k.scn.OnRunComplete(a.slot, len(a.runs)) {
				case scenario.Depart:
					if err := k.depart(a); err != nil {
						return err
					}
					anyChange = true
				case scenario.RestartFresh:
					a.inst.Restart()
					k.perfDirty = true
					if err := k.refreshIdentity(a); err != nil {
						return err
					}
					anyChange = true
				default: // scenario.Restart
					a.inst.Restart()
					k.perfDirty = true
				}
			}
		}
		if anyChange {
			if err := k.refreshMasks(); err != nil {
				return err
			}
		}
		if k.simTime >= k.nextPolicy {
			k.pol.Reconfigure()
			k.repartitions++
			k.nextPolicy += k.cfg.PolicyPeriod.Seconds()
			if err := k.refreshMasks(); err != nil {
				return err
			}
		}
		if k.collect {
			for k.simTime >= k.winStart+k.series.Width {
				k.closeWindow(k.winStart + k.series.Width)
			}
		}
	}
	return nil
}

// finish closes the trailing partial metrics window once the run is
// over. Split from runUntil so stepped execution closes it exactly once.
func (k *kernel) finish() {
	if k.collect && k.simTime > k.winStart {
		k.closeWindow(k.simTime)
	}
}
