package sim

import (
	"errors"
	"sync/atomic"
)

// ErrCanceled is the sentinel a kernel advance returns when its
// CancelFlag fires. It is a pause, not a failure: the machine stays
// valid and a later AdvanceTo (or a checkpoint/restore cycle) continues
// exactly where the canceled advance stopped. Callers that treat
// machine errors as fatal must special-case it with errors.Is.
var ErrCanceled = errors.New("sim: run canceled")

// CancelFlag is a cooperative cancellation signal shared between a
// signal handler (or test) and every kernel a run drives. The kernel
// polls it at tick-loop boundaries — the only places where stopping is
// both cheap and deterministic-to-resume — so cancellation latency is
// one event-horizon batch, not one instruction.
//
// A nil *CancelFlag is valid and never canceled, so single-run code
// pays one nil check and no atomic load. Mask/Unmask let the cluster
// engine suppress delivery during compound operations (migrating a
// machine's residents, applying a lifecycle event) whose intermediate
// states must not leak into a checkpoint.
type CancelFlag struct {
	v      atomic.Bool
	masked atomic.Bool
}

// Cancel requests cooperative cancellation. Idempotent, safe from any
// goroutine (typically a signal handler).
func (c *CancelFlag) Cancel() { c.v.Store(true) }

// Canceled reports whether cancellation has been requested and is not
// currently masked. Nil-safe.
func (c *CancelFlag) Canceled() bool {
	return c != nil && c.v.Load() && !c.masked.Load()
}

// Requested reports whether Cancel was called, ignoring the mask.
// Nil-safe.
func (c *CancelFlag) Requested() bool {
	return c != nil && c.v.Load()
}

// Mask suppresses Canceled until Unmask: the run is inside a compound
// state transition that must complete atomically before a checkpoint
// can be taken. Nil-safe no-op.
func (c *CancelFlag) Mask() {
	if c != nil {
		c.masked.Store(true)
	}
}

// Unmask re-enables delivery. Nil-safe no-op.
func (c *CancelFlag) Unmask() {
	if c != nil {
		c.masked.Store(false)
	}
}
