package sim_test

import (
	"strings"
	"testing"

	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/policy"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/sim/scenario"
)

func newTestMachine(t *testing.T, cfg sim.Config, name string, initial []string) *sim.OpenMachine {
	t.Helper()
	m, err := sim.NewOpenMachine(cfg, policy.NewStockDynamic(cfg.Plat.Ways), name, openPool(initial...), 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Extract → inject round-trip: applications lifted off a drained
// machine resume on the destination with their progress coordinate
// intact, the source reports them as evicted (neither departed nor
// remaining), and end-of-life stats span both machines.
func TestMigrateRoundTrip(t *testing.T) {
	cfg := openConfig()
	cfg.Plat = machine.Small(8, 4)
	cfg.TargetInsns = 5_000_000_000 // keep both apps resident past the extraction instant
	src := newTestMachine(t, cfg, "src", []string{"lbm06", "povray06"})
	if err := src.AdvanceTo(0.2); err != nil {
		t.Fatal(err)
	}
	residents := src.ExtractResidents(nil)
	if len(residents) != 2 {
		t.Fatalf("extracted %d residents, want 2", len(residents))
	}
	for _, r := range residents {
		if r.Queued {
			t.Fatalf("active resident %s extracted as queued", r.Spec.Name)
		}
		if r.RunInsns == 0 || r.AloneSeconds == 0 {
			t.Errorf("resident %s lost its progress coordinate: %+v", r.Spec.Name, r)
		}
		if r.ArrivedAt != 0 || r.AdmittedAt != 0 {
			t.Errorf("resident %s arrival/admission not preserved: %+v", r.Spec.Name, r)
		}
	}
	if src.Active() != 0 || src.Queued() != 0 {
		t.Fatalf("source not emptied: %d active, %d queued", src.Active(), src.Queued())
	}
	src.Halt()
	sres := src.Result()
	if sres.Evicted != 2 || sres.Departed != 0 || sres.Remaining != 0 {
		t.Errorf("source result = evicted %d departed %d remaining %d, want 2/0/0",
			sres.Evicted, sres.Departed, sres.Remaining)
	}

	dst := newTestMachine(t, cfg, "dst", nil)
	if err := dst.AdvanceTo(0.2); err != nil {
		t.Fatal(err)
	}
	for _, r := range residents {
		if err := dst.InjectResident(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := dst.Drain(); err != nil {
		t.Fatal(err)
	}
	dres := dst.Result()
	if dres.Departed != 2 || dres.Remaining != 0 || dres.Evicted != 0 {
		t.Fatalf("destination result = departed %d remaining %d evicted %d, want 2/0/0",
			dres.Departed, dres.Remaining, dres.Evicted)
	}
	for _, a := range dres.Apps {
		// The apps arrived at t=0 on the source; their slowdown on the
		// destination must account for that span, so it strictly exceeds 1
		// even though the destination saw them only from t=0.2.
		if a.Slowdown <= 1 {
			t.Errorf("%s slowdown = %v, want > 1 (end-to-end across machines)", a.Name, a.Slowdown)
		}
		if a.ArrivedAt != 0 {
			t.Errorf("%s arrival time = %v, want the original 0", a.Name, a.ArrivedAt)
		}
	}
}

// Queued residents (admission queue or undelivered arrivals) carry no
// progress: they must be requeued through normal placement, and the
// injection path enforces that.
func TestMigrateQueuedResidentRejected(t *testing.T) {
	cfg := openConfig()
	cfg.Plat = machine.Small(8, 1)
	src := newTestMachine(t, cfg, "src", []string{"lbm06", "povray06"})
	if err := src.AdvanceTo(0.1); err != nil {
		t.Fatal(err)
	}
	residents := src.ExtractResidents(nil)
	if len(residents) != 2 {
		t.Fatalf("extracted %d residents, want 2 (1 active + 1 queued)", len(residents))
	}
	var queued *sim.Resident
	for i := range residents {
		if residents[i].Queued {
			queued = &residents[i]
		}
	}
	if queued == nil {
		t.Fatal("single-core machine with two apps extracted no queued resident")
	}
	if queued.AdmittedAt >= 0 {
		t.Errorf("queued resident has admission time %v, want negative", queued.AdmittedAt)
	}
	dst := newTestMachine(t, cfg, "dst", nil)
	if err := dst.InjectResident(*queued); err == nil {
		t.Error("queued resident injected, want rejection")
	} else if !strings.Contains(err.Error(), "requeue") {
		t.Errorf("queued-resident error %q does not point at requeueing", err)
	}
}

// A halted machine is out of service: injection fails loudly while
// AdvanceTo and Drain are silent no-ops, so the fleet pool can treat up
// and down machines uniformly.
func TestHaltedMachineSemantics(t *testing.T) {
	cfg := openConfig()
	cfg.Plat = machine.Small(8, 2)
	m := newTestMachine(t, cfg, "m", []string{"lbm06"})
	if err := m.AdvanceTo(0.1); err != nil {
		t.Fatal(err)
	}
	residents := m.ExtractResidents(nil)
	m.Halt()
	if !m.Halted() {
		t.Fatal("Halted() false after Halt")
	}
	m.Halt() // idempotent
	now := m.Now()
	if err := m.AdvanceTo(now + 5); err != nil {
		t.Errorf("AdvanceTo on halted machine errored: %v", err)
	}
	if m.Now() != now {
		t.Errorf("halted machine advanced from %v to %v", now, m.Now())
	}
	if err := m.Drain(); err != nil {
		t.Errorf("Drain on halted machine errored: %v", err)
	}
	if err := m.InjectResident(residents[0]); err == nil {
		t.Error("resident injected into halted machine")
	}
	if err := m.Inject(scenario.Arrival{Time: now, Spec: openPool("povray06")[0]}); err == nil {
		t.Error("arrival injected into halted machine")
	}
}

// Injection needs a free core — a full machine rejects the resident so
// the lifecycle layer falls back to requeueing instead of silently
// oversubscribing.
func TestMigrateNoFreeCore(t *testing.T) {
	cfg := openConfig()
	cfg.Plat = machine.Small(8, 1)
	src := newTestMachine(t, cfg, "src", []string{"lbm06"})
	if err := src.AdvanceTo(0.1); err != nil {
		t.Fatal(err)
	}
	residents := src.ExtractResidents(nil)
	src.Halt()
	dst := newTestMachine(t, cfg, "dst", []string{"povray06"})
	if err := dst.AdvanceTo(0.1); err != nil {
		t.Fatal(err)
	}
	if err := dst.InjectResident(residents[0]); err == nil {
		t.Error("resident injected into a machine with no free core")
	}
}
