package sim

import (
	"fmt"

	"github.com/faircache/lfoc/internal/metrics"
	"github.com/faircache/lfoc/internal/sim/scenario"
)

// AppOutcome is one application's life in an open-system run.
type AppOutcome struct {
	// Name is the application's benchmark name; Slot its admission
	// index (-1 for an arrival the run ended before admitting).
	Name string `json:"name"`
	Slot int    `json:"slot"`
	// ArrivedAt is the trace arrival time; AdmittedAt when the app got
	// a core — later than ArrivedAt when the machine was full, negative
	// if the run's horizon cut it off while still queued or undelivered;
	// DepartedAt is negative while the app is still in the system.
	ArrivedAt   float64 `json:"arrived_at"`
	AdmittedAt  float64 `json:"admitted_at"`
	DepartedAt  float64 `json:"departed_at"`
	WaitSeconds float64 `json:"wait_seconds"`
	// AloneSeconds is the solo time the retired instructions would have
	// needed; Slowdown is (DepartedAt-AdmittedAt)/AloneSeconds at
	// departure (0 while still running).
	AloneSeconds float64 `json:"alone_seconds"`
	Slowdown     float64 `json:"slowdown"`
	Runs         int     `json:"runs"`
	// Evicted marks an application lifted out by a lifecycle extraction
	// (machine drain or failure): it neither departed nor remains here —
	// its life continues on whatever machine the cluster moved it to.
	// Absent outside lifecycle runs.
	Evicted bool `json:"evicted,omitempty"`
}

// OpenResult is what an open-system run reports: per-application
// outcomes in admission order plus time-windowed metrics, since scalar
// end-of-run aggregates are meaningless when the population churns.
type OpenResult struct {
	Scenario string       `json:"scenario"`
	Apps     []AppOutcome `json:"apps"`
	// Series holds the windowed unfairness/STP/throughput trajectory.
	Series metrics.WindowedSeries `json:"series"`
	// Summary aggregates the departed applications' slowdowns
	// (WindowSnapshot semantics: zero value when nothing departed).
	Summary metrics.Summary `json:"summary"`
	// MeanSlowdown and MeanWait average over departed applications.
	MeanSlowdown float64 `json:"mean_slowdown"`
	MeanWait     float64 `json:"mean_wait"`
	Departed     int     `json:"departed"`
	Remaining    int     `json:"remaining"`
	// Evicted counts applications extracted by machine lifecycle events
	// (they continue elsewhere, so they are in neither Departed nor
	// Remaining). Absent outside lifecycle runs.
	Evicted      int     `json:"evicted,omitempty"`
	PeakActive   int     `json:"peak_active"`
	Repartitions int     `json:"repartitions"`
	SimSeconds   float64 `json:"sim_seconds"`
}

// RunOpen runs an open scenario under a dynamic policy. MetricsWindow
// defaults to the policy period; identical (scenario, seed, config)
// inputs produce identical results — the open-system determinism the
// golden tests pin.
func RunOpen(cfg Config, scn *scenario.Open, pol Dynamic) (*OpenResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.MetricsWindow = cfg.EffectiveMetricsWindow()
	if len(scn.Initial()) == 0 && len(scn.Arrivals()) == 0 {
		return nil, fmt.Errorf("sim: open scenario %q has no applications", scn.Name())
	}
	k, err := newKernel(cfg, scn, pol)
	if err != nil {
		return nil, err
	}
	if err := k.run(); err != nil {
		return nil, err
	}
	return buildOpenResult(k, scn.Name()), nil
}

func buildOpenResult(k *kernel, name string) *OpenResult {
	res := &OpenResult{
		Scenario:     name,
		Apps:         make([]AppOutcome, len(k.apps)),
		Series:       k.series,
		PeakActive:   k.peak,
		Repartitions: k.repartitions,
		SimSeconds:   k.simTime,
	}
	var departed []float64
	var waitSum float64
	for i, a := range k.apps {
		o := AppOutcome{
			Name:         a.spec.Name,
			Slot:         a.slot,
			ArrivedAt:    a.arrivedAt,
			AdmittedAt:   a.admittedAt,
			DepartedAt:   a.departedAt,
			WaitSeconds:  a.admittedAt - a.arrivedAt,
			AloneSeconds: a.aloneT,
			Runs:         len(a.runs),
		}
		switch {
		case a.evicted:
			o.Evicted = true
			res.Evicted++
		case a.departedAt >= 0 && a.aloneT > 0:
			o.Slowdown = (a.departedAt - a.admittedAt) / a.aloneT
			if o.Slowdown < 1 {
				o.Slowdown = 1 // tick-quantization clamp, as in closed runs
			}
			departed = append(departed, o.Slowdown)
			waitSum += o.WaitSeconds
			res.Departed++
		default:
			res.Remaining++
		}
		res.Apps[i] = o
	}
	// Arrivals the run ended before admitting (a horizon cut them off
	// mid-queue or before delivery) still count toward the offered
	// load: without them Apps/Remaining would silently undercount.
	for _, arr := range k.waitQ {
		res.Apps = append(res.Apps, notAdmitted(arr))
		res.Remaining++
	}
	for _, arr := range k.arrivals[k.arrIdx:] {
		res.Apps = append(res.Apps, notAdmitted(arr))
		res.Remaining++
	}
	unf, stp, mean := metrics.WindowSnapshot(departed)
	if res.Departed > 0 {
		res.Summary = metrics.Summary{Unfairness: unf, STP: stp}
		res.MeanSlowdown = mean
		res.MeanWait = waitSum / float64(res.Departed)
	}
	return res
}

func notAdmitted(arr scenario.Arrival) AppOutcome {
	return AppOutcome{
		Name:       arr.Spec.Name,
		Slot:       -1,
		ArrivedAt:  arr.Time,
		AdmittedAt: -1,
		DepartedAt: -1,
	}
}
