package sim_test

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"github.com/faircache/lfoc/internal/core"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/plan"
	"github.com/faircache/lfoc/internal/policy"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/sim/scenario"
)

// snapPolicies enumerates every dynamic policy with checkpoint support;
// each entry builds a fresh instance, as RestoreMachine requires.
func snapPolicies(t *testing.T, plat *machine.Platform) map[string]func() sim.Dynamic {
	t.Helper()
	return map[string]func() sim.Dynamic{
		"stock": func() sim.Dynamic { return policy.NewStockDynamic(plat.Ways) },
		"dunn":  func() sim.Dynamic { return policy.NewDunnDynamic(plat.Ways) },
		"kpart": func() sim.Dynamic { return policy.NewKPartDynaway(plat.Ways) },
		"lfoc": func() sim.Dynamic {
			ctrl, err := core.NewController(core.DefaultParams(plat.Ways), plat.WayBytes)
			if err != nil {
				t.Fatal(err)
			}
			return ctrl
		},
	}
}

func snapArrivalStream() []scenario.Arrival {
	specs := openPool("lbm06", "povray06", "xalancbmk06", "libquantum06", "omnetpp06")
	var arrs []scenario.Arrival
	for i := 0; i < 10; i++ {
		arrs = append(arrs, scenario.Arrival{Time: 0.12 * float64(i+1), Spec: specs[i%len(specs)]})
	}
	return arrs
}

// The machine-level half of the headline guarantee: snapshot mid-run,
// round-trip through JSON, restore on a fresh machine, finish — the
// result is reflect.DeepEqual to an uninterrupted run's, for every
// dynamic policy that supports checkpointing.
func TestMachineSnapshotResumeDeepEqual(t *testing.T) {
	plat := machine.Small(8, 4)
	cfg := openConfig()
	cfg.Plat = plat
	arrs := snapArrivalStream()

	for name, mk := range snapPolicies(t, plat) {
		t.Run(name, func(t *testing.T) {
			// Reference: one uninterrupted run, no intermediate pauses.
			ref, err := sim.NewOpenMachine(cfg, mk(), "snap", openPool("lbm06", "povray06"), 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range arrs {
				if err := ref.Inject(a); err != nil {
					t.Fatal(err)
				}
			}
			if err := ref.Drain(); err != nil {
				t.Fatal(err)
			}

			// Interrupted: pause mid-trace, snapshot, JSON round-trip,
			// restore on a fresh kernel and policy, then finish.
			m, err := sim.NewOpenMachine(cfg, mk(), "snap", openPool("lbm06", "povray06"), 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range arrs {
				if err := m.Inject(a); err != nil {
					t.Fatal(err)
				}
			}
			if err := m.AdvanceTo(0.7); err != nil {
				t.Fatal(err)
			}
			snap, err := m.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			raw, err := json.Marshal(snap)
			if err != nil {
				t.Fatal(err)
			}
			var decoded sim.MachineSnapshot
			if err := json.Unmarshal(raw, &decoded); err != nil {
				t.Fatal(err)
			}
			resumed, err := sim.RestoreMachine(cfg, mk(), &decoded)
			if err != nil {
				t.Fatal(err)
			}
			if err := resumed.Drain(); err != nil {
				t.Fatal(err)
			}

			got, want := resumed.Result(), ref.Result()
			if !reflect.DeepEqual(got, want) {
				t.Errorf("resumed result diverges from uninterrupted run\n got: %+v\nwant: %+v", got, want)
			}
		})
	}
}

// Snapshot mid-run must not perturb the machine it was taken from: the
// donor keeps running to the identical result.
func TestSnapshotIsNonDisruptive(t *testing.T) {
	plat := machine.Small(8, 4)
	cfg := openConfig()
	cfg.Plat = plat
	arrs := snapArrivalStream()

	run := func(snapshotAt float64) *sim.OpenResult {
		m, err := sim.NewOpenMachine(cfg, policy.NewStockDynamic(plat.Ways), "donor", openPool("lbm06"), 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range arrs {
			if err := m.Inject(a); err != nil {
				t.Fatal(err)
			}
		}
		if snapshotAt > 0 {
			if err := m.AdvanceTo(snapshotAt); err != nil {
				t.Fatal(err)
			}
			if _, err := m.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Drain(); err != nil {
			t.Fatal(err)
		}
		return m.Result()
	}
	if got, want := run(0.5), run(0); !reflect.DeepEqual(got, want) {
		t.Error("taking a snapshot perturbed the donor machine")
	}
}

// Cancellation pauses at a tick boundary without poisoning the machine:
// AdvanceTo returns ErrCanceled, and clearing the flag lets the same
// machine resume to the identical result.
func TestCancelPausesWithoutPoisoning(t *testing.T) {
	plat := machine.Small(8, 4)
	cfg := openConfig()
	cfg.Plat = plat
	var flag sim.CancelFlag
	cfg.Cancel = &flag

	arrs := snapArrivalStream()
	m, err := sim.NewOpenMachine(cfg, policy.NewStockDynamic(plat.Ways), "cancel", openPool("lbm06", "povray06"), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arrs {
		if err := m.Inject(a); err != nil {
			t.Fatal(err)
		}
	}
	flag.Cancel()
	if err := m.AdvanceTo(0.5); !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("AdvanceTo under cancellation = %v, want ErrCanceled", err)
	}

	// The pause is cooperative, not fatal: un-cancel and continue.
	flag = sim.CancelFlag{}
	cfg.Cancel = &flag
	if err := m.AdvanceTo(0.5); err != nil {
		t.Fatalf("resume after cancel: %v", err)
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}

	ref, err := sim.NewOpenMachine(openConfigOn(plat), policy.NewStockDynamic(plat.Ways), "cancel", openPool("lbm06", "povray06"), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arrs {
		if err := ref.Inject(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Drain(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Result(), ref.Result()) {
		t.Error("canceled-then-resumed machine diverges from uninterrupted run")
	}
}

func openConfigOn(plat *machine.Platform) sim.Config {
	cfg := openConfig()
	cfg.Plat = plat
	return cfg
}

// A policy without PolicySnapshotter is rejected with the typed error,
// both at snapshot and at restore.
func TestSnapshotUnsupportedPolicyTyped(t *testing.T) {
	plat := machine.Small(8, 4)
	cfg := openConfigOn(plat)
	fixed, err := sim.NewFixedPlanPolicy(plan.SingleCluster(1, plat.Ways), 1, plat.Ways)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.NewOpenMachine(cfg, fixed, "fixed", openPool("lbm06"), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Snapshot()
	var unsup *sim.SnapshotUnsupportedError
	if !errors.As(err, &unsup) {
		t.Fatalf("Snapshot with plain policy = %v, want *SnapshotUnsupportedError", err)
	}
	if _, err := sim.RestoreMachine(cfg, fixed, &sim.MachineSnapshot{Name: "fixed"}); !errors.As(err, &unsup) {
		t.Fatalf("RestoreMachine with plain policy = %v, want *SnapshotUnsupportedError", err)
	}
}
