package scenario

import (
	"testing"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/profiles"
)

func pool(t *testing.T) []*appmodel.Spec {
	t.Helper()
	return []*appmodel.Spec{profiles.MustGet("povray06"), profiles.MustGet("lbm06")}
}

func TestClosedSemantics(t *testing.T) {
	c := NewClosed(pool(t), 0)
	if c.RunsTarget != 3 {
		t.Errorf("default RunsTarget = %d", c.RunsTarget)
	}
	if c.Arrivals() != nil || len(c.Initial()) != 2 {
		t.Error("closed scenario misreports its population")
	}
	if got := c.OnRunComplete(0, 1); got != Restart {
		t.Errorf("OnRunComplete = %v, want restart", got)
	}
	c.ResetIdentityOnRestart = true
	if got := c.OnRunComplete(0, 1); got != RestartFresh {
		t.Errorf("OnRunComplete with reset = %v, want restart-fresh", got)
	}
	if c.Done(Progress{Runs: []int{3, 2}}) {
		t.Error("done before every app reached the target")
	}
	if !c.Done(Progress{Runs: []int{3, 3}}) {
		t.Error("not done with every app at the target")
	}
}

func TestPoissonDeterminismAndShape(t *testing.T) {
	p := pool(t)
	a, err := NewPoisson("", p, 5, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPoisson("", p, 5, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Arrivals()) != len(b.Arrivals()) {
		t.Fatalf("same seed, different counts: %d vs %d", len(a.Arrivals()), len(b.Arrivals()))
	}
	for i := range a.Arrivals() {
		if a.Arrivals()[i] != b.Arrivals()[i] {
			t.Fatalf("same seed, arrival %d differs", i)
		}
	}
	// Expected count is rate*window = 50; a 5-sigma band is ~±35.
	if n := len(a.Arrivals()); n < 15 || n > 85 {
		t.Errorf("suspicious Poisson arrival count %d for rate 5 over 10s", n)
	}
	last := 0.0
	for i, arr := range a.Arrivals() {
		if arr.Time < last || arr.Time >= 10 {
			t.Fatalf("arrival %d at %v out of order or window", i, arr.Time)
		}
		last = arr.Time
		if arr.Spec == nil {
			t.Fatalf("arrival %d without spec", i)
		}
	}
	c, err := NewPoisson("", p, 5, 10, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := len(c.Arrivals()) == len(a.Arrivals())
	if same {
		for i := range a.Arrivals() {
			if a.Arrivals()[i] != c.Arrivals()[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced the identical trace")
	}
}

func TestPoissonValidation(t *testing.T) {
	p := pool(t)
	if _, err := NewPoisson("", nil, 1, 1, 0); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := NewPoisson("", p, 0, 1, 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewPoisson("", p, 1, 0, 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestTraceSortsAndValidates(t *testing.T) {
	p := pool(t)
	tr, err := NewTrace("", nil, []Arrival{{Time: 2, Spec: p[0]}, {Time: 1, Spec: p[1]}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Arrivals()[0].Time != 1 || tr.Arrivals()[1].Time != 2 {
		t.Error("trace not sorted by time")
	}
	if got := tr.OnRunComplete(0, 1); got != Depart {
		t.Errorf("open OnRunComplete = %v, want depart", got)
	}
	if !tr.Done(Progress{Pending: 0, Active: 0}) {
		t.Error("drained open system not done")
	}
	if tr.Done(Progress{Pending: 1}) || tr.Done(Progress{Active: 1}) {
		t.Error("done with work left")
	}
	if _, err := NewTrace("", nil, []Arrival{{Time: -1, Spec: p[0]}}); err == nil {
		t.Error("negative arrival time accepted")
	}
	if _, err := NewTrace("", nil, []Arrival{{Time: 1}}); err == nil {
		t.Error("nil spec accepted")
	}
}

func TestOpenHorizon(t *testing.T) {
	p := pool(t)
	tr, err := NewTrace("", nil, []Arrival{{Time: 0.5, Spec: p[0]}})
	if err != nil {
		t.Fatal(err)
	}
	tr.WithHorizon(2)
	if !tr.Done(Progress{Time: 2, Active: 1}) {
		t.Error("horizon did not terminate the scenario")
	}
	if tr.Done(Progress{Time: 1.9, Active: 1}) {
		t.Error("terminated before the horizon with work left")
	}
}
