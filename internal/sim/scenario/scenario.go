// Package scenario is the workload-shape layer of the co-scheduling
// simulator: it decides which applications exist, when they arrive, and
// what happens when one retires its per-run instruction quota. The
// execution kernel in internal/sim is scenario-agnostic — it integrates
// application progress, delivers counter windows and drives the policy,
// while the scenario supplies arrivals and rules.
//
// Two scenarios ship with the repository:
//
//   - Closed reproduces the paper's §5 closed-batch methodology: all
//     applications start together and restart until every one of them
//     has completed RunsTarget runs. sim.RunDynamic is exactly this
//     scenario, and a golden test pins the equivalence bit-for-bit.
//   - Open models the churn a deployed LFOC faces: applications arrive
//     from a seeded Poisson process (or an explicit trace), run their
//     quota once, and depart, freeing their core and their class of
//     service for the next arrival.
//
// Scenarios are pure data + decisions; they never touch kernel state
// directly, which is what keeps every new experiment a constructor call
// rather than a fork of the simulator.
package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/faircache/lfoc/internal/appmodel"
)

// Outcome is a scenario's decision about an application that has just
// retired its per-run instruction quota.
type Outcome int

const (
	// Restart re-runs the program immediately, keeping its monitoring
	// identity (class, counter history) — the paper's §5 methodology.
	Restart Outcome = iota
	// RestartFresh re-runs the program as a brand-new process: the
	// policy sees an exit followed by a spawn under a fresh id and must
	// re-learn the application's class from scratch.
	RestartFresh
	// Depart removes the application from the system.
	Depart
)

func (o Outcome) String() string {
	switch o {
	case Restart:
		return "restart"
	case RestartFresh:
		return "restart-fresh"
	case Depart:
		return "depart"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Arrival schedules one application entering the system.
type Arrival struct {
	// Time is the arrival instant in simulated seconds (quantized to the
	// kernel tick when delivered).
	Time float64
	Spec *appmodel.Spec
	// Tag is an opaque caller label carried through the kernel untouched
	// (zero for plain trace arrivals). The cluster lifecycle layer uses
	// it to count placement attempts across failure-driven requeues, so
	// retry accounting needs no identity map on top of the kernel.
	Tag int
}

// Progress is the kernel state a scenario consults in Done. The Runs
// slice is the kernel's own storage — read it, don't keep it.
type Progress struct {
	// Time is the current simulated time in seconds.
	Time float64
	// Active counts applications currently in the system.
	Active int
	// Pending counts scheduled arrivals not yet admitted (including
	// arrivals waiting for a free core).
	Pending int
	// Runs holds completed runs per application slot, in admission
	// order.
	Runs []int
}

// TimeHorizoned is an optional Scenario refinement the execution
// kernel's event-horizon fast path consults: Horizon returns the one
// simulated time at or beyond which Done may flip to true as a function
// of Progress.Time alone (0 = Done never depends on time), and the
// value must be fixed for the lifetime of a run. Declaring it lets the
// kernel advance whole event horizons at once instead of polling Done
// every tick; scenarios that do not implement it run on the legacy
// per-tick path, which imposes no constraint on Done.
type TimeHorizoned interface {
	Horizon() float64
}

// Scenario shapes one experiment over the scenario-agnostic kernel.
type Scenario interface {
	// Name labels the scenario in results and reports.
	Name() string
	// Initial returns the applications present at time zero.
	Initial() []*appmodel.Spec
	// Arrivals returns later arrivals in nondecreasing time order (nil
	// for closed scenarios).
	Arrivals() []Arrival
	// OnRunComplete is consulted when the application in the given slot
	// retires its instruction quota for the runs-th time.
	OnRunComplete(slot, runs int) Outcome
	// Done reports whether the experiment is over.
	Done(p Progress) bool
}

// Closed is the paper's §5 closed-batch methodology: every application
// is present from time zero, restarts immediately on completion, and
// the experiment ends when all of them have completed RunsTarget runs.
type Closed struct {
	Specs      []*appmodel.Spec
	RunsTarget int
	// ResetIdentityOnRestart makes each restart look like an exit plus
	// a spawn: the policy's per-app state is discarded and the program
	// re-enters under a fresh monitoring id, so the class is re-learned.
	// Off by default, matching the paper's simplification of keeping
	// the monitoring identity across restarts.
	ResetIdentityOnRestart bool
}

// NewClosed builds the closed scenario for a workload.
func NewClosed(specs []*appmodel.Spec, runsTarget int) *Closed {
	if runsTarget <= 0 {
		runsTarget = 3
	}
	return &Closed{Specs: specs, RunsTarget: runsTarget}
}

// Name implements Scenario.
func (c *Closed) Name() string { return "closed" }

// Initial implements Scenario.
func (c *Closed) Initial() []*appmodel.Spec { return c.Specs }

// Arrivals implements Scenario: a closed system has none.
func (c *Closed) Arrivals() []Arrival { return nil }

// Horizon implements TimeHorizoned: a closed run's Done depends only on
// completed runs, never on time, so the kernel's event-horizon fast
// path is always safe.
func (c *Closed) Horizon() float64 { return 0 }

// OnRunComplete implements Scenario.
func (c *Closed) OnRunComplete(slot, runs int) Outcome {
	if c.ResetIdentityOnRestart {
		return RestartFresh
	}
	return Restart
}

// Done implements Scenario: every app has completed RunsTarget runs.
func (c *Closed) Done(p Progress) bool {
	for _, r := range p.Runs {
		if r < c.RunsTarget {
			return false
		}
	}
	return true
}

// Open is the open-system scenario: applications arrive from a trace,
// run their instruction quota once, and depart. The experiment ends
// when the trace is drained and the system is empty, or when the
// optional horizon is reached (whichever comes first).
type Open struct {
	name     string
	initial  []*appmodel.Spec
	arrivals []Arrival
	horizon  float64
}

// NewTrace builds an open scenario from an explicit arrival trace.
// Arrivals are sorted by time; negative times are rejected.
func NewTrace(name string, initial []*appmodel.Spec, arrivals []Arrival) (*Open, error) {
	if name == "" {
		name = "trace"
	}
	for i := range arrivals {
		if arrivals[i].Time < 0 {
			return nil, fmt.Errorf("scenario: arrival %d at negative time %v", i, arrivals[i].Time)
		}
		if arrivals[i].Spec == nil {
			return nil, fmt.Errorf("scenario: arrival %d without a spec", i)
		}
	}
	sorted := append([]Arrival(nil), arrivals...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
	return &Open{name: name, initial: initial, arrivals: sorted}, nil
}

// NewPoisson builds an open scenario whose arrivals follow a seeded
// Poisson process of the given rate (arrivals per simulated second)
// over [0, window) seconds, each arrival drawing its application
// uniformly from pool. Identical (pool, rate, window, seed) inputs
// yield the identical trace, which is what makes open-system runs
// reproducible end to end.
func NewPoisson(name string, pool []*appmodel.Spec, rate, window float64, seed int64) (*Open, error) {
	if len(pool) == 0 {
		return nil, fmt.Errorf("scenario: empty application pool")
	}
	if rate <= 0 {
		return nil, fmt.Errorf("scenario: arrival rate must be positive, got %v", rate)
	}
	if window <= 0 {
		return nil, fmt.Errorf("scenario: arrival window must be positive, got %v", window)
	}
	if name == "" {
		name = fmt.Sprintf("poisson(%g/s)", rate)
	}
	rng := rand.New(rand.NewSource(seed))
	var arrivals []Arrival
	t := rng.ExpFloat64() / rate
	for t < window {
		arrivals = append(arrivals, Arrival{Time: t, Spec: pool[rng.Intn(len(pool))]})
		t += rng.ExpFloat64() / rate
	}
	return &Open{name: name, arrivals: arrivals}, nil
}

// WithHorizon caps the experiment at the given simulated duration:
// Done fires at the horizon even if applications are still running
// (they are reported as remaining in the system). Zero removes the cap.
func (o *Open) WithHorizon(seconds float64) *Open {
	o.horizon = seconds
	return o
}

// Horizon returns the cap set by WithHorizon (0 = none) — the cluster
// layer propagates it to every machine it feeds from the trace, and it
// implements TimeHorizoned: the cap is the only time at which Done can
// flip as a function of time alone. Call WithHorizon before the run
// starts; the kernel captures the value once.
func (o *Open) Horizon() float64 { return o.horizon }

// Name implements Scenario.
func (o *Open) Name() string { return o.name }

// Initial implements Scenario.
func (o *Open) Initial() []*appmodel.Spec { return o.initial }

// Arrivals implements Scenario.
func (o *Open) Arrivals() []Arrival { return o.arrivals }

// OnRunComplete implements Scenario: one quota, then out.
func (o *Open) OnRunComplete(slot, runs int) Outcome { return Depart }

// QueueInitialOverflow reports that initial applications beyond the
// machine's core count start in the admission queue instead of failing
// the run: open-system applications depart and free cores, so queued
// initial apps are eventually admitted FIFO, exactly like arrivals on a
// full machine. Closed scenarios deliberately lack this method — their
// applications never depart, so an over-subscribed closed run could
// never finish and is rejected up-front instead.
func (o *Open) QueueInitialOverflow() bool { return true }

// Done implements Scenario: trace drained and system empty, or horizon
// reached.
func (o *Open) Done(p Progress) bool {
	if o.horizon > 0 && p.Time >= o.horizon {
		return true
	}
	return p.Pending == 0 && p.Active == 0
}
