package sim

import (
	"errors"
	"fmt"
	"math"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/sim/scenario"
)

// feedScenario is the open scenario of a cluster-fed machine: arrivals
// are not known upfront but injected one at a time by a placement
// layer, so the scenario cannot decide termination from its own trace.
// Instead the feeder marks the stream drained when the global trace is
// exhausted; until then the machine idles between arrivals exactly like
// a monolithic open run whose next arrival is still in the future.
type feedScenario struct {
	name    string
	initial []*appmodel.Spec
	horizon float64
	drained bool
}

func (f *feedScenario) Name() string                            { return f.name }
func (f *feedScenario) Initial() []*appmodel.Spec               { return f.initial }
func (f *feedScenario) Arrivals() []scenario.Arrival            { return nil }
func (f *feedScenario) OnRunComplete(int, int) scenario.Outcome { return scenario.Depart }
func (f *feedScenario) QueueInitialOverflow() bool              { return true }

// Horizon implements scenario.TimeHorizoned so cluster machines keep
// the kernel's event-horizon fast path: the cap is the only time-based
// Done trigger (the drained flag only ever flips between runUntil
// calls, never inside one).
func (f *feedScenario) Horizon() float64 { return f.horizon }

func (f *feedScenario) Done(p scenario.Progress) bool {
	if f.horizon > 0 && p.Time >= f.horizon {
		return true
	}
	return f.drained && p.Pending == 0 && p.Active == 0
}

// OpenMachine is one steppable machine of a cluster: an open-system
// kernel whose arrivals are injected by a placement layer instead of
// being fixed upfront. The step protocol — AdvanceTo the arrival
// instant, inspect load, Inject, Drain at end of trace — executes
// exactly the operation sequence of a monolithic RunOpen over the
// arrivals the machine ended up with, so an N=1 cluster is bit-identical
// to RunOpen and per-machine results equal independent replays of the
// split trace (both pinned by tests in internal/cluster).
type OpenMachine struct {
	k      *kernel
	feed   *feedScenario
	err    error
	halted bool // taken out of service by Halt (drain/failure)
}

// NewOpenMachine builds a machine. name labels the machine's result
// (use the cluster scenario's name); horizon, if positive, caps the
// machine's simulated time exactly like scenario.Open.WithHorizon;
// initial holds the applications placed on this machine at time zero.
// MetricsWindow defaults to the policy period, as in RunOpen.
func NewOpenMachine(cfg Config, pol Dynamic, name string, initial []*appmodel.Spec, horizon float64) (*OpenMachine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.MetricsWindow = cfg.EffectiveMetricsWindow()
	feed := &feedScenario{name: name, initial: initial, horizon: horizon}
	k, err := newKernel(cfg, feed, pol)
	if err != nil {
		return nil, err
	}
	return &OpenMachine{k: k, feed: feed}, nil
}

// Inject schedules one arrival on this machine. Arrivals must be
// injected in nondecreasing time order and before Drain.
func (m *OpenMachine) Inject(arr scenario.Arrival) error {
	if m.err != nil {
		return m.err
	}
	if m.feed.drained {
		return fmt.Errorf("sim: inject after drain on %q", m.feed.name)
	}
	if arr.Spec == nil {
		return fmt.Errorf("sim: inject without a spec on %q", m.feed.name)
	}
	if err := arr.Spec.Validate(); err != nil {
		return err
	}
	if n := len(m.k.arrivals); n > 0 && arr.Time < m.k.arrivals[n-1].Time {
		return fmt.Errorf("sim: inject at %v after arrival at %v on %q",
			arr.Time, m.k.arrivals[n-1].Time, m.feed.name)
	}
	m.k.arrivals = append(m.k.arrivals, arr)
	return nil
}

// AdvanceTo runs the machine until its simulated time reaches t (or the
// machine is done — horizon reached). Advancing a done machine is a
// no-op, letting the feeder keep placing trailing arrivals that will be
// reported as not admitted, exactly as RunOpen reports arrivals beyond
// the horizon.
func (m *OpenMachine) AdvanceTo(t float64) error {
	if m.err != nil || m.halted {
		return m.err
	}
	// ErrCanceled is a pause, not a machine failure: it must not stick
	// in m.err, or the machine could never resume after the checkpoint.
	if err := m.k.runUntil(t); err != nil {
		if !errors.Is(err, ErrCanceled) {
			m.err = err
		}
		return err
	}
	return nil
}

// Drain marks the arrival stream exhausted and runs the machine to
// completion (system empty or horizon).
func (m *OpenMachine) Drain() error {
	if m.err != nil || m.halted {
		return m.err
	}
	m.feed.drained = true
	if err := m.k.runUntil(math.Inf(1)); err != nil {
		if !errors.Is(err, ErrCanceled) {
			m.err = err
		}
		return err
	}
	m.k.finish()
	return nil
}

// Now returns the machine's current simulated time.
func (m *OpenMachine) Now() float64 { return m.k.simTime }

// Done reports whether the machine has terminated (horizon reached, or
// drained and empty).
func (m *OpenMachine) Done() bool { return m.feed.Done(m.k.progress()) }

// Active counts the applications currently holding a core.
func (m *OpenMachine) Active() int { return m.k.nActive }

// Queued counts arrivals waiting for a free core plus injected arrivals
// not yet delivered.
func (m *OpenMachine) Queued() int {
	return len(m.k.waitQ) + len(m.k.arrivals) - m.k.arrIdx
}

// Cores returns the machine's core count (its admission capacity).
func (m *OpenMachine) Cores() int { return m.k.cfg.Plat.Cores }

// Platform returns the machine's modeled platform. In a heterogeneous
// fleet each machine may run a different one; contention-aware placement
// evaluates a candidate machine on its own platform.
func (m *OpenMachine) Platform() *machine.Platform { return m.k.cfg.Plat }

// ActivePhases appends the current phase of every resident application
// to dst and returns it — the placement-policy view of what a candidate
// machine is running, reused across calls to avoid per-arrival
// allocation.
func (m *OpenMachine) ActivePhases(dst []*appmodel.PhaseSpec) []*appmodel.PhaseSpec {
	// Iterate the active subset, not every slot ever admitted: a churn
	// run retires thousands of slots and this runs at every placement
	// refresh. actives preserves slot order (compactActives), so the
	// output order matches the historical full scan exactly.
	for _, a := range m.k.actives {
		if a.active {
			dst = append(dst, a.inst.Phase())
		}
	}
	return dst
}

// NextEventHorizon returns a conservative lower bound on the next
// simulated instant at which this machine's placement-visible state
// (Active, Queued, ActivePhases) or extractable resident coordinates
// can change. For any t below the bound, skipping AdvanceTo(t) leaves
// the machine bit-identical to having made the call: the cluster's
// fleet event queue orders machines by it and advances only those whose
// horizon has passed. A done or halted machine reports +Inf (its state
// is frozen); a machine with a pending injected arrival reports at most
// that arrival's time. The bound is recomputed from scratch on every
// call — callers cache it and re-query after AdvanceTo, Inject,
// InjectResident or Drain.
func (m *OpenMachine) NextEventHorizon() float64 {
	if m.err != nil || m.halted {
		return math.Inf(1)
	}
	return m.k.nextEventTime()
}

// Result assembles the machine's open-system result. Call after Drain.
func (m *OpenMachine) Result() *OpenResult {
	return buildOpenResult(m.k, m.feed.name)
}
