package sim_test

import (
	"testing"
	"time"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/core"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/policy"
	"github.com/faircache/lfoc/internal/profiles"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/sim/scenario"
)

func openConfig() sim.Config {
	return sim.Config{
		Plat:         machine.Skylake(),
		TargetInsns:  500_000_000,
		PolicyPeriod: 100 * time.Millisecond,
	}
}

func openPool(names ...string) []*appmodel.Spec {
	out := make([]*appmodel.Spec, len(names))
	for i, n := range names {
		out[i] = profiles.MustGet(n)
	}
	return out
}

func lfocPolicy(t *testing.T, plat *machine.Platform) (*core.Controller, sim.Dynamic) {
	t.Helper()
	ctrl, err := core.NewController(core.DefaultParams(plat.Ways), plat.WayBytes)
	if err != nil {
		t.Fatal(err)
	}
	return ctrl, ctrl
}

// An open trace may start over-subscribed: initial apps beyond the core
// count start in the admission queue (like arrivals on a full machine)
// and are admitted FIFO as residents depart — a closed run with the
// same population still errors, because its apps never free a core.
func TestOpenInitialOverflowQueues(t *testing.T) {
	cfg := openConfig()
	cfg.Plat = machine.Small(8, 2)
	initial := openPool("povray06", "namd06", "povray06", "namd06")
	scn, err := scenario.NewTrace("overflow", initial, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunOpen(cfg, scn, policy.NewStockDynamic(cfg.Plat.Ways))
	if err != nil {
		t.Fatal(err)
	}
	if res.Departed != len(initial) || res.Remaining != 0 {
		t.Fatalf("departed %d remaining %d, want all %d initial apps to complete",
			res.Departed, res.Remaining, len(initial))
	}
	if res.PeakActive > cfg.Plat.Cores {
		t.Errorf("peak active %d exceeds %d cores", res.PeakActive, cfg.Plat.Cores)
	}
	queued := 0
	for _, a := range res.Apps {
		if a.WaitSeconds > 0 {
			queued++
		}
	}
	if queued != len(initial)-cfg.Plat.Cores {
		t.Errorf("%d apps waited, want the %d over-capacity initial apps",
			queued, len(initial)-cfg.Plat.Cores)
	}
	if _, err := sim.RunDynamic(cfg, initial, policy.NewStockDynamic(cfg.Plat.Ways)); err == nil {
		t.Error("over-subscribed closed run accepted")
	}
}

func TestOpenPoissonChurn(t *testing.T) {
	cfg := openConfig()
	pool := openPool("xalancbmk06", "lbm06", "povray06", "libquantum06", "soplex06")
	scn, err := scenario.NewPoisson("churn", pool, 8, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	_, pol := lfocPolicy(t, cfg.Plat)
	res, err := sim.RunOpen(cfg, scn, pol)
	if err != nil {
		t.Fatal(err)
	}
	if res.Departed == 0 {
		t.Fatal("no application ever departed")
	}
	if res.Remaining != 0 {
		t.Errorf("%d apps remaining after drain", res.Remaining)
	}
	if res.PeakActive == 0 || res.PeakActive > cfg.Plat.Cores {
		t.Errorf("peak active = %d (cores %d)", res.PeakActive, cfg.Plat.Cores)
	}
	if len(res.Series.Points) == 0 {
		t.Fatal("no windowed metrics collected")
	}
	for i, p := range res.Series.Points {
		if p.End <= p.Start {
			t.Errorf("window %d: degenerate bounds [%v,%v)", i, p.Start, p.End)
		}
		if i > 0 && p.Start != res.Series.Points[i-1].End {
			t.Errorf("window %d: not contiguous", i)
		}
	}
	for _, a := range res.Apps {
		if a.DepartedAt < 0 {
			t.Errorf("app %d (%s) never departed", a.Slot, a.Name)
			continue
		}
		if a.Slowdown < 1 {
			t.Errorf("app %d: slowdown %v < 1", a.Slot, a.Slowdown)
		}
		if a.AdmittedAt < a.ArrivedAt {
			t.Errorf("app %d: admitted %v before arrival %v", a.Slot, a.AdmittedAt, a.ArrivedAt)
		}
		if a.Runs != 1 {
			t.Errorf("app %d: %d runs in a depart-on-completion scenario", a.Slot, a.Runs)
		}
	}
}

// Same trace + seed + config must reproduce every windowed metric and
// every per-app outcome exactly. CI runs this under -race.
func TestOpenDeterminism(t *testing.T) {
	cfg := openConfig()
	pool := openPool("xalancbmk06", "lbm06", "povray06", "namd06")
	run := func(seed int64) *sim.OpenResult {
		scn, err := scenario.NewPoisson("det", pool, 6, 2, seed)
		if err != nil {
			t.Fatal(err)
		}
		_, pol := lfocPolicy(t, cfg.Plat)
		res, err := sim.RunOpen(cfg, scn, pol)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(7), run(7)
	if a.Series.Fingerprint() != b.Series.Fingerprint() {
		t.Error("same seed, different windowed series")
	}
	if len(a.Apps) != len(b.Apps) {
		t.Fatalf("same seed, different populations: %d vs %d", len(a.Apps), len(b.Apps))
	}
	for i := range a.Apps {
		if a.Apps[i] != b.Apps[i] {
			t.Errorf("app %d diverges: %+v vs %+v", i, a.Apps[i], b.Apps[i])
		}
	}
	c := run(8)
	if len(c.Apps) == len(a.Apps) && a.Series.Fingerprint() == c.Series.Fingerprint() {
		t.Error("different seeds produced identical runs")
	}
}

// A machine smaller than the offered load must queue arrivals FIFO and
// still drain deterministically.
func TestOpenQueueingOnFullMachine(t *testing.T) {
	cfg := openConfig()
	cfg.Plat = machine.Small(8, 2)
	pool := openPool("povray06", "namd06")
	scn, err := scenario.NewPoisson("overload", pool, 30, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunOpen(cfg, scn, policy.NewStockDynamic(cfg.Plat.Ways))
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakActive > 2 {
		t.Errorf("peak active %d exceeds 2 cores", res.PeakActive)
	}
	queued := 0
	for _, a := range res.Apps {
		if a.WaitSeconds > 0 {
			queued++
		}
	}
	if queued == 0 {
		t.Error("overloaded machine never queued an arrival")
	}
	if res.Remaining != 0 {
		t.Errorf("%d apps never admitted/departed", res.Remaining)
	}
}

// An explicit trace admits in order and respects arrival times.
func TestOpenExplicitTrace(t *testing.T) {
	cfg := openConfig()
	spec := profiles.MustGet("povray06")
	arrivals := []scenario.Arrival{
		{Time: 0.5, Spec: spec},
		{Time: 0.1, Spec: profiles.MustGet("lbm06")}, // out of order: NewTrace sorts
	}
	scn, err := scenario.NewTrace("t", openPool("namd06"), arrivals)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunOpen(cfg, scn, policy.NewStockDynamic(cfg.Plat.Ways))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 3 {
		t.Fatalf("expected 3 apps, got %d", len(res.Apps))
	}
	if res.Apps[0].Name != "namd06" || res.Apps[0].ArrivedAt != 0 {
		t.Errorf("initial app wrong: %+v", res.Apps[0])
	}
	if res.Apps[1].Name != "lbm06" || res.Apps[2].Name != "povray06" {
		t.Errorf("trace order not respected: %s then %s", res.Apps[1].Name, res.Apps[2].Name)
	}
	if res.Apps[2].AdmittedAt < 0.5 {
		t.Errorf("povray admitted at %v, before its arrival at 0.5", res.Apps[2].AdmittedAt)
	}
}

// Open runs must release policy state on departure: after the system
// drains, every dynamic policy's assignment must be empty — otherwise
// monitoring state (and, downstream, classes of service) leak.
func TestOpenPolicyStateReclaimed(t *testing.T) {
	cfg := openConfig()
	pool := openPool("xalancbmk06", "lbm06", "povray06")
	pols := map[string]sim.Dynamic{
		"stock": policy.NewStockDynamic(cfg.Plat.Ways),
		"dunn":  policy.NewDunnDynamic(cfg.Plat.Ways),
		"kpart": policy.NewKPartDynaway(cfg.Plat.Ways),
	}
	ctrl, lfocPol := lfocPolicy(t, cfg.Plat)
	pols["lfoc"] = lfocPol
	for name, pol := range pols {
		scn, err := scenario.NewPoisson("drain", pool, 10, 2, 11)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.RunOpen(cfg, scn, pol)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Remaining != 0 {
			t.Errorf("%s: %d apps remaining", name, res.Remaining)
		}
		asg, err := pol.Assignment()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(asg) != 0 {
			t.Errorf("%s: %d stale assignments after drain: %v", name, len(asg), asg)
		}
	}
	if got := ctrl.SamplingActive(); got != -1 {
		t.Errorf("lfoc still sampling app %d after drain", got)
	}
}

// The documented simplification — restarted programs keep their
// monitoring identity — becomes a scenario knob: with
// ResetIdentityOnRestart the policy sees an exit+spawn per run and must
// re-learn the class, and the re-learned classification converges to
// what the keep-identity run established.
func TestIdentityResetReclassificationConverges(t *testing.T) {
	cfg := openConfig()
	cfg.TargetInsns = 2_000_000_000
	specs := openPool("xalancbmk06", "lbm06", "povray06")

	baseCtrl, basePol := lfocPolicy(t, cfg.Plat)
	baseRes, err := sim.RunClosed(cfg, scenario.NewClosed(specs, 3), basePol)
	if err != nil {
		t.Fatal(err)
	}

	resetCtrl, resetPol := lfocPolicy(t, cfg.Plat)
	scn := scenario.NewClosed(specs, 3)
	scn.ResetIdentityOnRestart = true
	resetRes, err := sim.RunClosed(cfg, scn, resetPol)
	if err != nil {
		t.Fatal(err)
	}

	// Every classified fresh identity must agree with the keep-identity
	// baseline (convergence); at least one fresh identity must actually
	// have been re-classified. The very last spawn of the slowest slot
	// is legitimately still ClassUnknown — it was born as the experiment
	// ended.
	fresh, relearned := 0, 0
	for slot := range specs {
		baseID := baseRes.FinalMonIDs[slot]
		resetID := resetRes.FinalMonIDs[slot]
		if baseID != slot {
			t.Errorf("keep-identity run changed slot %d's id to %d", slot, baseID)
		}
		if resetID != slot {
			fresh++
		}
		want := baseCtrl.ClassOf(baseID)
		if want == core.ClassUnknown {
			t.Errorf("slot %d never classified in the baseline run", slot)
		}
		got := resetCtrl.ClassOf(resetID)
		if got == core.ClassUnknown {
			continue
		}
		if got != want {
			t.Errorf("slot %d: fresh identity re-classified as %v, keep-identity says %v", slot, got, want)
		} else if resetID != slot {
			relearned++
		}
	}
	if fresh == 0 {
		t.Error("no slot ever received a fresh identity despite ResetIdentityOnRestart")
	}
	if relearned == 0 {
		t.Error("no fresh identity converged to the baseline classification")
	}
}

// A horizon that cuts the run off mid-queue must not make the
// unadmitted arrivals vanish: the offered load stays visible in Apps
// and Remaining.
func TestOpenHorizonKeepsUnadmittedArrivalsVisible(t *testing.T) {
	cfg := openConfig()
	cfg.Plat = machine.Small(8, 2)
	spec := profiles.MustGet("povray06")
	var arrivals []scenario.Arrival
	for i := 0; i < 10; i++ {
		arrivals = append(arrivals, scenario.Arrival{Time: float64(i) * 0.001, Spec: spec})
	}
	scn, err := scenario.NewTrace("cutoff", nil, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	scn.WithHorizon(0.05) // far less than one service time
	res, err := sim.RunOpen(cfg, scn, policy.NewStockDynamic(cfg.Plat.Ways))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 10 {
		t.Fatalf("%d apps reported, 10 arrived", len(res.Apps))
	}
	if res.Departed+res.Remaining != 10 {
		t.Errorf("departed %d + remaining %d != 10", res.Departed, res.Remaining)
	}
	unadmitted := 0
	for _, a := range res.Apps {
		if a.AdmittedAt < 0 {
			unadmitted++
			if a.Slot != -1 || a.DepartedAt >= 0 {
				t.Errorf("unadmitted outcome inconsistent: %+v", a)
			}
		}
	}
	if unadmitted != 8 {
		t.Errorf("%d unadmitted arrivals reported, want 8 (2 cores)", unadmitted)
	}
}
