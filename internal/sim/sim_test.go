package sim

import (
	"math"
	"testing"
	"time"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/core"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/plan"
	"github.com/faircache/lfoc/internal/policy"
	"github.com/faircache/lfoc/internal/profiles"
	"github.com/faircache/lfoc/internal/sim/scenario"
)

func testConfig() Config {
	return Config{
		Plat:         machine.Skylake(),
		TargetInsns:  1_000_000_000,
		RunsTarget:   3,
		PolicyPeriod: 500 * time.Millisecond,
	}
}

func specsOf(names ...string) []*appmodel.Spec {
	out := make([]*appmodel.Spec, len(names))
	for i, n := range names {
		out[i] = profiles.MustGet(n)
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	c := Config{}
	if c.Validate() == nil {
		t.Error("empty config accepted")
	}
	c = Config{Plat: machine.Skylake()}
	if c.Validate() == nil {
		t.Error("zero TargetInsns accepted")
	}
	c = testConfig()
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
	if c.RunsTarget != 3 || c.TicksPerPeriod != 250 {
		t.Error("defaults not applied")
	}
}

func TestAloneCompletionTime(t *testing.T) {
	plat := machine.Skylake()
	spec := profiles.MustGet("povray06")
	ct := AloneCompletionTime(spec, plat, 1_000_000_000)
	perf := appmodel.PhasePerf(&spec.Phases[0], plat, plat.LLCBytes(), 1)
	want := 1e9 / (perf.IPC * float64(plat.FreqHz))
	if math.Abs(ct-want)/want > 1e-9 {
		t.Errorf("alone CT = %v, want %v", ct, want)
	}
	// Phased app: the alone time must account for both phases.
	phased := profiles.MustGet("xz17")
	ctp := AloneCompletionTime(phased, plat, 100_000_000_000)
	if ctp <= 0 {
		t.Errorf("phased alone CT = %v", ctp)
	}
}

func TestStaticSoloAppSlowdownIsOne(t *testing.T) {
	cfg := testConfig()
	specs := specsOf("povray06")
	res, err := RunStatic(cfg, specs, plan.SingleCluster(1, cfg.Plat.Ways))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RunTimes[0]) < 3 {
		t.Fatalf("only %d runs completed", len(res.RunTimes[0]))
	}
	if res.Slowdowns[0] > 1.02 {
		t.Errorf("solo slowdown = %v, want ~1", res.Slowdowns[0])
	}
	if res.Summary.Unfairness != 1 {
		t.Errorf("solo unfairness = %v", res.Summary.Unfairness)
	}
}

func TestStaticStockShowsContention(t *testing.T) {
	cfg := testConfig()
	specs := specsOf("xalancbmk06", "lbm06", "libquantum06", "povray06")
	res, err := RunStatic(cfg, specs, plan.SingleCluster(4, cfg.Plat.Ways))
	if err != nil {
		t.Fatal(err)
	}
	if res.Slowdowns[0] < 1.2 {
		t.Errorf("sensitive slowdown under stock = %v, want > 1.2", res.Slowdowns[0])
	}
	if res.Summary.Unfairness < 1.15 {
		t.Errorf("unfairness = %v, want contention", res.Summary.Unfairness)
	}
	// Everyone completed at least RunsTarget runs.
	for i, rt := range res.RunTimes {
		if len(rt) < 3 {
			t.Errorf("app %d completed %d runs", i, len(rt))
		}
	}
}

func TestStaticIsolationPlanReducesUnfairness(t *testing.T) {
	cfg := testConfig()
	specs := specsOf("xalancbmk06", "lbm06", "libquantum06", "povray06")
	stock, err := RunStatic(cfg, specs, plan.SingleCluster(4, cfg.Plat.Ways))
	if err != nil {
		t.Fatal(err)
	}
	iso := plan.Plan{Clusters: []plan.Cluster{
		{Apps: []int{1, 2}, Ways: 1},
		{Apps: []int{0}, Ways: 8},
		{Apps: []int{3}, Ways: 2},
	}}
	lfocish, err := RunStatic(cfg, specs, iso)
	if err != nil {
		t.Fatal(err)
	}
	if lfocish.Summary.Unfairness >= stock.Summary.Unfairness {
		t.Errorf("isolation unfairness %.3f >= stock %.3f",
			lfocish.Summary.Unfairness, stock.Summary.Unfairness)
	}
}

func TestDynamicLFOCLearnsAndImproves(t *testing.T) {
	cfg := testConfig()
	specs := specsOf("xalancbmk06", "soplex06", "lbm06", "libquantum06", "povray06", "namd06")

	stockPol := policy.NewStockDynamic(cfg.Plat.Ways)
	stock, err := RunDynamic(cfg, specs, stockPol)
	if err != nil {
		t.Fatal(err)
	}

	ctrl, err := core.NewController(core.DefaultParams(cfg.Plat.Ways), cfg.Plat.WayBytes)
	if err != nil {
		t.Fatal(err)
	}
	lfoc, err := RunDynamic(cfg, specs, ctrl)
	if err != nil {
		t.Fatal(err)
	}

	// Classes must have been learned online.
	if ctrl.ClassOf(2) != core.ClassStreaming || ctrl.ClassOf(3) != core.ClassStreaming {
		t.Errorf("streaming apps classified as %v/%v", ctrl.ClassOf(2), ctrl.ClassOf(3))
	}
	if ctrl.ClassOf(0) != core.ClassSensitive {
		t.Errorf("xalancbmk classified as %v", ctrl.ClassOf(0))
	}
	if lfoc.Summary.Unfairness >= stock.Summary.Unfairness {
		t.Errorf("LFOC unfairness %.3f >= stock %.3f",
			lfoc.Summary.Unfairness, stock.Summary.Unfairness)
	}
	if lfoc.Repartitions == 0 {
		t.Error("partitioner never ran")
	}
}

func TestDynamicDunnRuns(t *testing.T) {
	cfg := testConfig()
	specs := specsOf("xalancbmk06", "lbm06", "povray06", "gamess06")
	pol := policy.NewDunnDynamic(cfg.Plat.Ways)
	res, err := RunDynamic(cfg, specs, pol)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.STP <= 0 || res.Summary.Unfairness < 1 {
		t.Errorf("bad summary: %+v", res.Summary)
	}
}

func TestDynamicPhaseChangeTriggersResampling(t *testing.T) {
	cfg := testConfig()
	cfg.TargetInsns = 2_000_000_000
	// A custom phased app: light for 600M insns, then streaming.
	phased := &appmodel.Spec{
		Name:  "phasey",
		Class: appmodel.ClassStreaming,
		Phases: []appmodel.PhaseSpec{
			{Name: "quiet", DurationInsns: 600_000_000, BaseCPI: 0.5, APKI: 0.5, MLP: 4,
				Locality: profiles.MustGet("povray06").Phases[0].Locality},
			{Name: "stream", DurationInsns: 0, BaseCPI: 0.6, APKI: 55, MLP: 9,
				Locality: profiles.MustGet("lbm06").Phases[0].Locality},
		},
	}
	specs := []*appmodel.Spec{phased, profiles.MustGet("soplex06")}
	ctrl, err := core.NewController(core.DefaultParams(cfg.Plat.Ways), cfg.Plat.WayBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDynamic(cfg, specs, ctrl); err != nil {
		t.Fatal(err)
	}
	if ctrl.ClassOf(0) != core.ClassStreaming {
		t.Errorf("phased app ended as %v, want streaming", ctrl.ClassOf(0))
	}
	if ctrl.Resamples(0) == 0 {
		t.Error("no resampling despite phase change")
	}
}

func TestRunDynamicErrors(t *testing.T) {
	cfg := testConfig()
	pol := policy.NewStockDynamic(cfg.Plat.Ways)
	if _, err := RunDynamic(cfg, nil, pol); err == nil {
		t.Error("empty workload accepted")
	}
	many := make([]*appmodel.Spec, cfg.Plat.Cores+1)
	for i := range many {
		many[i] = profiles.MustGet("povray06")
	}
	if _, err := RunDynamic(cfg, many, policy.NewStockDynamic(cfg.Plat.Ways)); err == nil {
		t.Error("more apps than cores accepted")
	}
}

func TestRunStaticRejectsBadPlan(t *testing.T) {
	cfg := testConfig()
	specs := specsOf("povray06", "namd06")
	bad := plan.Plan{Clusters: []plan.Cluster{{Apps: []int{0}, Ways: 11}}}
	if _, err := RunStatic(cfg, specs, bad); err == nil {
		t.Error("plan missing an app accepted")
	}
}

func TestMaxSimTimeGuard(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSimTime = time.Millisecond // absurdly small
	specs := specsOf("povray06")
	if _, err := RunStatic(cfg, specs, plan.SingleCluster(1, cfg.Plat.Ways)); err == nil {
		t.Error("MaxSimTime guard did not fire")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testConfig()
	specs := specsOf("xalancbmk06", "lbm06", "povray06")
	run := func() *Result {
		ctrl, err := core.NewController(core.DefaultParams(cfg.Plat.Ways), cfg.Plat.WayBytes)
		if err != nil {
			t.Fatal(err)
		}
		r, err := RunDynamic(cfg, specs, ctrl)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	for i := range a.Slowdowns {
		if a.Slowdowns[i] != b.Slowdowns[i] {
			t.Fatalf("nondeterministic slowdowns: %v vs %v", a.Slowdowns, b.Slowdowns)
		}
	}
}

func TestRunAccounting(t *testing.T) {
	cfg := testConfig()
	specs := specsOf("xalancbmk06", "lbm06", "povray06")
	res, err := RunStatic(cfg, specs, plan.SingleCluster(3, cfg.Plat.Ways))
	if err != nil {
		t.Fatal(err)
	}
	for i, runs := range res.RunTimes {
		if len(runs) < cfg.RunsTarget {
			t.Errorf("app %d: %d runs", i, len(runs))
		}
		var sum float64
		for _, r := range runs {
			if r <= 0 {
				t.Errorf("app %d: non-positive run time %v", i, r)
			}
			sum += r
		}
		// An app is always running, so its completed runs cannot take
		// longer than the whole experiment.
		if sum > res.SimSeconds+1e-9 {
			t.Errorf("app %d: runs sum %.3f > sim %.3f", i, sum, res.SimSeconds)
		}
		if res.CT[i] <= 0 || res.AloneCT[i] <= 0 {
			t.Errorf("app %d: CT %v alone %v", i, res.CT[i], res.AloneCT[i])
		}
	}
}

func TestRepartitionCadence(t *testing.T) {
	cfg := testConfig()
	specs := specsOf("povray06", "namd06")
	pol := policy.NewDunnDynamic(cfg.Plat.Ways)
	res, err := RunDynamic(cfg, specs, pol)
	if err != nil {
		t.Fatal(err)
	}
	expected := res.SimSeconds / cfg.PolicyPeriod.Seconds()
	if float64(res.Repartitions) < expected-2 || float64(res.Repartitions) > expected+2 {
		t.Errorf("repartitions = %d, expected ~%.0f", res.Repartitions, expected)
	}
}

// The §5.2 concern: LFOC's online sampling episodes run the workload
// under deliberately suboptimal configurations. With early stopping they
// must cost little — dynamic LFOC should stay close to the quality of
// its own static decision (which pays no sampling overhead).
func TestSamplingOverheadSmall(t *testing.T) {
	cfg := testConfig()
	specs := specsOf("xalancbmk06", "soplex06", "lbm06", "povray06")

	ctrl, err := core.NewController(core.DefaultParams(cfg.Plat.Ways), cfg.Plat.WayBytes)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := RunDynamic(cfg, specs, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	// Re-run the final learned plan statically.
	static, err := RunStatic(cfg, specs, ctrl.Plan())
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Summary.Unfairness > static.Summary.Unfairness*1.15 {
		t.Errorf("sampling overhead too high: dynamic %.3f vs static %.3f",
			dyn.Summary.Unfairness, static.Summary.Unfairness)
	}
}

// Extension (the paper's future work, §5.2): KPart-Dynaway must run to
// completion under the simulator. Its full-sweep profiling is exactly
// the overhead LFOC's early-stopping avoids, so dynamic LFOC should be
// at least as fair on a mixed workload.
func TestKPartDynawayExtension(t *testing.T) {
	cfg := testConfig()
	specs := specsOf("xalancbmk06", "soplex06", "lbm06", "libquantum06", "povray06")

	kd := policy.NewKPartDynaway(cfg.Plat.Ways)
	kdRes, err := RunDynamic(cfg, specs, kd)
	if err != nil {
		t.Fatal(err)
	}
	if kdRes.Summary.STP <= 0 || kdRes.Summary.Unfairness < 1 {
		t.Fatalf("bad summary: %+v", kdRes.Summary)
	}
	// After the workload ran, profiling must have finished and produced
	// a real clustering (not the bootstrap single cluster).
	p := kd.Reconfigure()
	if err := p.Validate(len(specs), cfg.Plat.Ways); err != nil {
		t.Fatalf("%v (%s)", err, p.Canonical())
	}
	if len(p.Clusters) < 2 {
		t.Errorf("dynaway never moved beyond the bootstrap plan: %s", p.Canonical())
	}

	ctrl, err := core.NewController(core.DefaultParams(cfg.Plat.Ways), cfg.Plat.WayBytes)
	if err != nil {
		t.Fatal(err)
	}
	lfocRes, err := RunDynamic(cfg, specs, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if lfocRes.Summary.Unfairness > kdRes.Summary.Unfairness*1.1 {
		t.Errorf("LFOC (%.3f) clearly less fair than KPart-Dynaway (%.3f)",
			lfocRes.Summary.Unfairness, kdRes.Summary.Unfairness)
	}
}

func TestEquilCacheExactness(t *testing.T) {
	// The memoized equilibrium path must reproduce the direct path
	// bit-for-bit: same completion times, slowdowns and summary.
	cfg := testConfig()
	specs := specsOf("xalancbmk06", "lbm06", "povray06", "soplex06")
	run := func(disable bool) *Result {
		c := cfg
		c.noEquilCache = disable
		ctrl, err := core.NewController(core.DefaultParams(c.Plat.Ways), c.Plat.WayBytes)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunDynamic(c, specs, ctrl)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cached := run(false)
	direct := run(true)
	if cached.SimSeconds != direct.SimSeconds {
		t.Errorf("SimSeconds diverge: cached %v direct %v", cached.SimSeconds, direct.SimSeconds)
	}
	for i := range cached.Slowdowns {
		if cached.Slowdowns[i] != direct.Slowdowns[i] {
			t.Errorf("app %d slowdown diverges: cached %v direct %v", i, cached.Slowdowns[i], direct.Slowdowns[i])
		}
	}
	if cached.Summary != direct.Summary {
		t.Errorf("summary diverges: cached %+v direct %+v", cached.Summary, direct.Summary)
	}
}

// The equilibrium memo must stay exact under churn too: the cache key
// now spans a varying active set, and a collision between different
// populations would silently corrupt an open run.
func TestOpenEquilCacheExactness(t *testing.T) {
	cfg := testConfig()
	cfg.TargetInsns = 500_000_000
	pool := specsOf("xalancbmk06", "lbm06", "povray06", "soplex06")
	run := func(disable bool) *OpenResult {
		c := cfg
		c.noEquilCache = disable
		scn, err := scenario.NewPoisson("exact", pool, 8, 2, 5)
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := core.NewController(core.DefaultParams(c.Plat.Ways), c.Plat.WayBytes)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunOpen(c, scn, ctrl)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cached := run(false)
	direct := run(true)
	if cached.Series.Fingerprint() != direct.Series.Fingerprint() {
		t.Error("windowed series diverge between memoized and direct equilibrium paths")
	}
	if len(cached.Apps) != len(direct.Apps) {
		t.Fatalf("populations diverge: %d vs %d", len(cached.Apps), len(direct.Apps))
	}
	for i := range cached.Apps {
		if cached.Apps[i] != direct.Apps[i] {
			t.Errorf("app %d diverges: %+v vs %+v", i, cached.Apps[i], direct.Apps[i])
		}
	}
}
