package sim

import (
	"encoding/json"
	"fmt"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/metrics"
	"github.com/faircache/lfoc/internal/pmc"
	"github.com/faircache/lfoc/internal/sim/scenario"
)

// PolicySnapshotter is the optional Dynamic refinement checkpointing
// requires: a policy that can serialize its learned state (classes,
// histories, sampling episodes, current plan) and later rebuild it on a
// fresh instance constructed with the same parameters. Restoring on a
// same-parameter instance and re-rendering Assignment() must reproduce
// the pre-snapshot masks exactly — that is what makes a resumed machine
// bit-identical to an uninterrupted one. Policies without it are
// rejected up-front with *SnapshotUnsupportedError when a run is
// configured to checkpoint.
type PolicySnapshotter interface {
	// PolicySnapshot serializes the policy's dynamic state.
	PolicySnapshot() ([]byte, error)
	// PolicyRestore rebuilds the dynamic state on a freshly constructed
	// policy with identical construction parameters.
	PolicyRestore(data []byte) error
}

// SnapshotUnsupportedError reports a policy (partitioning or placement)
// that cannot participate in checkpointing because it does not
// implement the relevant snapshotter interface.
type SnapshotUnsupportedError struct {
	// What names the offending component, e.g. the policy type.
	What string
}

func (e *SnapshotUnsupportedError) Error() string {
	return fmt.Sprintf("sim: %s does not support checkpointing (no snapshotter interface)", e.What)
}

// AppSnapshot is one application slot's serialized state: everything
// admit/advance wrote that is not a pure function of (config, spec,
// policy state). Float fields round-trip bit-exactly through JSON
// (shortest-representation encoding); derived state — the contention
// equilibrium, per-tick step grids, alone-rate memos — is deliberately
// omitted and rederived on restore, which is exact because each is a
// pure function of the serialized coordinate.
type AppSnapshot struct {
	Slot  int            `json:"slot"`
	MonID int            `json:"mon_id"`
	Spec  *appmodel.Spec `json:"spec"`

	// Progress coordinate of the appmodel instance.
	PhaseIndex int    `json:"phase_index"`
	IntoPhase  uint64 `json:"into_phase"`
	TotalInsns uint64 `json:"total_insns"`

	Counter  pmc.CounterSnapshot `json:"counter"`
	NextWin  uint64              `json:"next_win"`
	RunInsns uint64              `json:"run_insns"`
	Quota    uint64              `json:"quota"`
	RunStart float64             `json:"run_start"`
	Runs     []float64           `json:"runs,omitempty"`

	FracInsns  float64 `json:"frac_insns"`
	FracCycles float64 `json:"frac_cycles"`
	FracMiss   float64 `json:"frac_miss"`
	FracStall  float64 `json:"frac_stall"`

	Active     bool    `json:"active"`
	Evicted    bool    `json:"evicted,omitempty"`
	Tag        int     `json:"tag,omitempty"`
	ArrivedAt  float64 `json:"arrived_at"`
	AdmittedAt float64 `json:"admitted_at"`
	DepartedAt float64 `json:"departed_at"`
	AloneT     float64 `json:"alone_t"`
}

// ArrivalSnapshot is one undelivered (or queued) arrival.
type ArrivalSnapshot struct {
	Time float64        `json:"time"`
	Spec *appmodel.Spec `json:"spec"`
	Tag  int            `json:"tag,omitempty"`
}

// MachineSnapshot is the complete advancement coordinate of one
// OpenMachine: restoring it on a fresh machine with the identical
// Config and a same-parameter policy resumes the trajectory exactly
// where it stopped — the subsequent operation sequence is the one the
// uninterrupted run would have executed (runUntil's pause-point
// invariance), so results are reflect.DeepEqual to a never-interrupted
// run.
type MachineSnapshot struct {
	Name    string  `json:"name"`
	Horizon float64 `json:"horizon"`
	Halted  bool    `json:"halted,omitempty"`
	Drained bool    `json:"drained,omitempty"`

	SimTime      float64 `json:"sim_time"`
	NextPolicy   float64 `json:"next_policy"`
	Repartitions int     `json:"repartitions"`
	NextMonID    int     `json:"next_mon_id"`
	Peak         int     `json:"peak"`

	Apps      []AppSnapshot     `json:"apps"`
	RunCounts []int             `json:"run_counts"`
	WaitQ     []ArrivalSnapshot `json:"wait_q,omitempty"`
	// Pending holds the injected arrivals not yet delivered.
	Pending []ArrivalSnapshot `json:"pending,omitempty"`

	Series   metrics.WindowedSeries `json:"series"`
	WinStart float64                `json:"win_start"`
	WinArr   int                    `json:"win_arr"`
	WinDep   int                    `json:"win_dep"`
	WinRuns  int                    `json:"win_runs"`

	// Policy is the partitioning policy's PolicySnapshot payload
	// (JSON, kept raw so checkpoint files stay human-readable).
	Policy json.RawMessage `json:"policy,omitempty"`
}

func snapArrivals(arrs []scenario.Arrival) []ArrivalSnapshot {
	if len(arrs) == 0 {
		return nil
	}
	out := make([]ArrivalSnapshot, len(arrs))
	for i, a := range arrs {
		out[i] = ArrivalSnapshot{Time: a.Time, Spec: a.Spec, Tag: a.Tag}
	}
	return out
}

func unsnapArrivals(snaps []ArrivalSnapshot) ([]scenario.Arrival, error) {
	if len(snaps) == 0 {
		return nil, nil
	}
	out := make([]scenario.Arrival, len(snaps))
	for i, s := range snaps {
		if s.Spec == nil {
			return nil, fmt.Errorf("sim: snapshot arrival %d without a spec", i)
		}
		if err := s.Spec.Validate(); err != nil {
			return nil, err
		}
		out[i] = scenario.Arrival{Time: s.Time, Spec: s.Spec, Tag: s.Tag}
	}
	return out, nil
}

// Snapshot captures the machine's full advancement coordinate. The
// machine must be error-free (a canceled advance is not an error — the
// cancel sentinel never sticks) and its policy must implement
// PolicySnapshotter. The snapshot aliases no mutable kernel state that
// a later advance would overwrite in place except the metrics series
// backing array — marshal it before advancing further.
func (m *OpenMachine) Snapshot() (*MachineSnapshot, error) {
	if m.err != nil {
		return nil, fmt.Errorf("sim: snapshot of failed machine %q: %w", m.feed.name, m.err)
	}
	ps, ok := m.k.pol.(PolicySnapshotter)
	if !ok {
		return nil, &SnapshotUnsupportedError{What: fmt.Sprintf("partitioning policy %T", m.k.pol)}
	}
	polState, err := ps.PolicySnapshot()
	if err != nil {
		return nil, fmt.Errorf("sim: snapshot policy on %q: %w", m.feed.name, err)
	}
	k := m.k
	snap := &MachineSnapshot{
		Name:         m.feed.name,
		Horizon:      m.feed.horizon,
		Halted:       m.halted,
		Drained:      m.feed.drained,
		SimTime:      k.simTime,
		NextPolicy:   k.nextPolicy,
		Repartitions: k.repartitions,
		NextMonID:    k.nextMonID,
		Peak:         k.peak,
		Apps:         make([]AppSnapshot, len(k.apps)),
		RunCounts:    append([]int(nil), k.runCounts...),
		WaitQ:        snapArrivals(k.waitQ),
		Pending:      snapArrivals(k.arrivals[k.arrIdx:]),
		Series:       k.series,
		WinStart:     k.winStart,
		WinArr:       k.winArr,
		WinDep:       k.winDep,
		WinRuns:      k.winRuns,
		Policy:       polState,
	}
	for i, a := range k.apps {
		snap.Apps[i] = AppSnapshot{
			Slot:       a.slot,
			MonID:      a.monID,
			Spec:       a.spec,
			PhaseIndex: a.inst.PhaseIndex(),
			IntoPhase:  a.inst.IntoPhase(),
			TotalInsns: a.inst.TotalInstructions(),
			Counter:    a.counter.Snapshot(),
			NextWin:    a.nextWin,
			RunInsns:   a.runInsns,
			Quota:      a.quota,
			RunStart:   a.runStart,
			Runs:       append([]float64(nil), a.runs...),
			FracInsns:  a.fracInsns,
			FracCycles: a.fracCycles,
			FracMiss:   a.fracMiss,
			FracStall:  a.fracStall,
			Active:     a.active,
			Evicted:    a.evicted,
			Tag:        a.tag,
			ArrivedAt:  a.arrivedAt,
			AdmittedAt: a.admittedAt,
			DepartedAt: a.departedAt,
			AloneT:     a.aloneT,
		}
	}
	return snap, nil
}

// RestoreMachine rebuilds an OpenMachine from a snapshot. cfg must be
// the configuration the snapshot was taken under (the checkpoint layer
// stores enough to cross-check, not the config itself — platform model
// parameters are code, not data) and pol a freshly constructed policy
// with the same parameters; pol must implement PolicySnapshotter.
//
// Everything not serialized is rederived: the contention equilibrium
// and CAT masks refresh from the restored policy state before the first
// advance, per-app step grids and alone-rate memos rebuild lazily on
// the first tick, and all of those are pure functions of the restored
// coordinate — which is why the resumed trajectory is bit-identical.
func RestoreMachine(cfg Config, pol Dynamic, snap *MachineSnapshot) (*OpenMachine, error) {
	if snap == nil {
		return nil, fmt.Errorf("sim: nil machine snapshot")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ps, ok := pol.(PolicySnapshotter)
	if !ok {
		return nil, &SnapshotUnsupportedError{What: fmt.Sprintf("partitioning policy %T", pol)}
	}
	cfg.MetricsWindow = cfg.EffectiveMetricsWindow()
	feed := &feedScenario{name: snap.Name, horizon: snap.Horizon, drained: snap.Drained}
	k, err := newKernel(cfg, feed, pol)
	if err != nil {
		return nil, err
	}
	if len(snap.RunCounts) != len(snap.Apps) {
		return nil, fmt.Errorf("sim: snapshot %q has %d run counts for %d apps",
			snap.Name, len(snap.RunCounts), len(snap.Apps))
	}
	nActive := 0
	k.apps = make([]*kernelApp, 0, len(snap.Apps))
	k.actives = k.actives[:0]
	for i, s := range snap.Apps {
		if s.Spec == nil {
			return nil, fmt.Errorf("sim: snapshot app %d without a spec", i)
		}
		if err := s.Spec.Validate(); err != nil {
			return nil, err
		}
		if s.Slot != i {
			return nil, fmt.Errorf("sim: snapshot app %d claims slot %d", i, s.Slot)
		}
		inst := appmodel.NewInstance(s.Spec)
		if err := inst.SeekTo(s.PhaseIndex, s.IntoPhase, s.TotalInsns); err != nil {
			return nil, fmt.Errorf("sim: snapshot app %d: %w", i, err)
		}
		a := &kernelApp{
			slot:       s.Slot,
			monID:      s.MonID,
			spec:       s.Spec,
			inst:       inst,
			nextWin:    s.NextWin,
			runInsns:   s.RunInsns,
			quota:      s.Quota,
			runStart:   s.RunStart,
			runs:       append([]float64(nil), s.Runs...),
			fracInsns:  s.FracInsns,
			fracCycles: s.FracCycles,
			fracMiss:   s.FracMiss,
			fracStall:  s.FracStall,
			active:     s.Active,
			evicted:    s.Evicted,
			tag:        s.Tag,
			arrivedAt:  s.ArrivedAt,
			admittedAt: s.AdmittedAt,
			departedAt: s.DepartedAt,
			aloneT:     s.AloneT,
			stepsDirty: true,
		}
		a.counter.Restore(s.Counter)
		k.apps = append(k.apps, a)
		if a.active {
			// actives holds the active subset in slot order; appending in
			// snapshot order preserves the invariant.
			k.actives = append(k.actives, a)
			nActive++
		}
	}
	if nActive > cfg.Plat.Cores {
		return nil, fmt.Errorf("sim: snapshot %q has %d active apps for %d cores",
			snap.Name, nActive, cfg.Plat.Cores)
	}
	k.runCounts = append([]int(nil), snap.RunCounts...)
	k.activesDirty = false
	k.nActive = nActive
	k.nextMonID = snap.NextMonID
	k.peak = snap.Peak
	if k.waitQ, err = unsnapArrivals(snap.WaitQ); err != nil {
		return nil, err
	}
	if k.arrivals, err = unsnapArrivals(snap.Pending); err != nil {
		return nil, err
	}
	k.arrIdx = 0
	if k.collect && len(snap.Series.Points) > 0 && snap.Series.Width != k.series.Width {
		return nil, fmt.Errorf("sim: snapshot %q collected %vs metric windows, config says %vs — resume must use the original config",
			snap.Name, snap.Series.Width, k.series.Width)
	}
	k.simTime = snap.SimTime
	k.nextPolicy = snap.NextPolicy
	k.repartitions = snap.Repartitions
	width := k.series.Width
	k.series = snap.Series
	if k.series.Width == 0 {
		k.series.Width = width
	}
	k.winStart = snap.WinStart
	k.winArr = snap.WinArr
	k.winDep = snap.WinDep
	k.winRuns = snap.WinRuns
	k.perfDirty = true
	if err := ps.PolicyRestore(snap.Policy); err != nil {
		return nil, fmt.Errorf("sim: restore policy on %q: %w", snap.Name, err)
	}
	if err := k.refreshMasks(); err != nil {
		return nil, err
	}
	return &OpenMachine{k: k, feed: feed, halted: snap.Halted}, nil
}
