package profiles

import (
	"testing"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/machine"
)

func TestCatalogSize(t *testing.T) {
	// Fig. 5 draws from 34 SPEC benchmarks.
	if got := len(Names()); got != 34 {
		t.Errorf("catalog has %d entries, want 34", got)
	}
}

func TestCatalogValidation(t *testing.T) {
	for _, name := range Names() {
		if err := MustGet(name).Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nonexistent"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet should panic")
		}
	}()
	MustGet("nonexistent")
}

// The catalog's ground-truth classes must agree with the Table 1 criteria
// applied to each app's dominant-phase profile on the Skylake platform —
// this is the contract the whole evaluation rests on.
func TestCatalogClassesMatchTable1(t *testing.T) {
	plat := machine.Skylake()
	crit := appmodel.DefaultCriteria()
	for _, name := range Names() {
		spec := MustGet(name)
		tbl := appmodel.DominantTable(spec, plat)
		if got := crit.Classify(tbl); got != spec.Class {
			curve := tbl.SlowdownCurve()
			t.Errorf("%s: classified %v, catalog says %v (slowdown@1=%.3f @2=%.3f mpkc@1=%.1f mpkc@11=%.1f)",
				name, got, spec.Class, curve[1], curve[2], tbl.MPKC[1], tbl.MPKC[plat.Ways])
		}
	}
}

func TestClassPopulations(t *testing.T) {
	st := ByClass(appmodel.ClassStreaming)
	se := ByClass(appmodel.ClassSensitive)
	li := ByClass(appmodel.ClassLight)
	if len(st) < 5 {
		t.Errorf("only %d streaming apps", len(st))
	}
	if len(se) < 6 {
		t.Errorf("only %d sensitive apps", len(se))
	}
	if len(li) < 12 {
		t.Errorf("only %d light apps", len(li))
	}
	if len(st)+len(se)+len(li) != len(Names()) {
		t.Error("class partition incomplete")
	}
}

func TestPhasedApps(t *testing.T) {
	ph := Phased()
	want := map[string]bool{
		"fotonik3d17": true, "mcf06": true, "astar06": true,
		"xz17": true, "xalancbmk17": true,
	}
	if len(ph) != len(want) {
		t.Errorf("phased apps = %v", ph)
	}
	for _, n := range ph {
		if !want[n] {
			t.Errorf("unexpected phased app %s", n)
		}
	}
}

// Fig. 1 fidelity: lbm must be flat with high MPKC; xalancbmk must show a
// steep slowdown curve with moderate MPKC at 1 way.
func TestFig1Shapes(t *testing.T) {
	plat := machine.Skylake()
	lbm := appmodel.DominantTable(MustGet("lbm06"), plat)
	xal := appmodel.DominantTable(MustGet("xalancbmk06"), plat)

	if sd := lbm.Slowdown(1); sd > 1.06 {
		t.Errorf("lbm slowdown at 1 way = %.3f, want ~1.0", sd)
	}
	if lbm.MPKC[1] < 15 {
		t.Errorf("lbm MPKC = %.1f, want >= 15", lbm.MPKC[1])
	}
	if sd := xal.Slowdown(1); sd < 1.5 || sd > 2.5 {
		t.Errorf("xalancbmk slowdown at 1 way = %.3f, want ~1.8", sd)
	}
	if xal.MPKC[1] < 5 || xal.MPKC[1] > 16 {
		t.Errorf("xalancbmk MPKC at 1 way = %.1f, want ~10", xal.MPKC[1])
	}
	if xal.MPKC[plat.Ways] > 4 {
		t.Errorf("xalancbmk MPKC at full LLC = %.1f, want small", xal.MPKC[plat.Ways])
	}
}

// Fig. 4 fidelity: fotonik3d starts light (low MPKC) and transitions to
// streaming (high MPKC).
func TestFig4FotonikPhases(t *testing.T) {
	plat := machine.Skylake()
	spec := MustGet("fotonik3d17")
	if len(spec.Phases) != 2 {
		t.Fatal("fotonik3d should have 2 phases")
	}
	crit := appmodel.DefaultCriteria()
	setup := appmodel.BuildTable(&spec.Phases[0], plat)
	stream := appmodel.BuildTable(&spec.Phases[1], plat)
	if got := crit.Classify(setup); got != appmodel.ClassLight {
		t.Errorf("setup phase classified %v, want light", got)
	}
	if got := crit.Classify(stream); got != appmodel.ClassStreaming {
		t.Errorf("stream phase classified %v, want streaming", got)
	}
	if setup.MPKC[plat.Ways] > 5 || stream.MPKC[plat.Ways] < 10 {
		t.Error("fotonik3d MPKC phase contrast missing")
	}
}

// Streaming apps must keep LLCMPKC >= 10 at every allocation so Table 1's
// witness condition has room to fire during online sampling.
func TestStreamingAppsHaveHighMPKC(t *testing.T) {
	plat := machine.Skylake()
	for _, name := range ByClass(appmodel.ClassStreaming) {
		tbl := appmodel.DominantTable(MustGet(name), plat)
		if tbl.MPKC[1] < 10 {
			t.Errorf("%s: MPKC at 1 way = %.1f, want >= 10", name, tbl.MPKC[1])
		}
	}
}

// Sensitive apps must lose at least 5% performance somewhere at >= 2 ways
// but recover at full allocation.
func TestSensitiveAppsCurves(t *testing.T) {
	plat := machine.Skylake()
	for _, name := range ByClass(appmodel.ClassSensitive) {
		tbl := appmodel.DominantTable(MustGet(name), plat)
		if tbl.Slowdown(2) < 1.05 {
			t.Errorf("%s: slowdown at 2 ways = %.3f, want >= 1.05", name, tbl.Slowdown(2))
		}
		if tbl.Slowdown(plat.Ways) != 1 {
			t.Errorf("%s: slowdown at full LLC != 1", name)
		}
	}
}

// The Dunn confusion the paper reports (§5.1): streaming aggressors show
// STALLS_L2_MISS fractions comparable to highly sensitive apps, so a
// stalls-only policy cannot tell them apart.
func TestDunnConfusionExists(t *testing.T) {
	plat := machine.Skylake()
	gems := appmodel.DominantTable(MustGet("gemsfdtd06"), plat)
	sopl := appmodel.DominantTable(MustGet("soplex06"), plat)
	// Compare stall fractions when sharing (few effective ways each).
	g, s := gems.StallFrac[2], sopl.StallFrac[2]
	ratio := g / s
	if ratio < 0.6 || ratio > 1.8 {
		t.Errorf("stall fractions too different (gems=%.2f soplex=%.2f); Dunn confusion would not occur", g, s)
	}
}
