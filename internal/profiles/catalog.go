// Package profiles provides the catalog of synthetic SPEC CPU2006/2017
// application models used throughout the reproduction.
//
// The paper's workloads (Fig. 5) draw from 34 SPEC benchmarks profiled on
// the Skylake testbed. We cannot ship SPEC, so each benchmark is replaced
// by an appmodel.Spec whose parameters are tuned to land in the same
// Table 1 class and to exhibit the qualitative curves the paper reports:
//
//   - lbm/libquantum/milc/GemsFDTD/leslie3d: streaming aggressors — flat
//     slowdown, LLCMPKC well above 10 at every allocation (Fig. 1, lbm).
//   - xalancbmk/omnetpp/soplex/sphinx3/mcf: cache-sensitive — slowdown
//     grows steeply as ways shrink (Fig. 1, xalancbmk).
//   - gamess/povray/namd/...: light sharing — private-level working sets.
//   - fotonik3d: a light prelude phase followed by a long streaming phase
//     (Fig. 4); xz/astar/mcf/xalancbmk: long-term alternation between
//     memory-intensive and quiet phases (§5.2's P workloads).
//
// The ground-truth class of each entry is validated against the Table 1
// criteria by the package tests, so catalog drift is caught immediately.
package profiles

import (
	"fmt"
	"sort"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/stackdist"
)

const (
	mb = 1 << 20
	// B is one billion instructions.
	B = 1_000_000_000
)

// steady builds a single endless phase.
func steady(name string, baseCPI, apki, mlp float64, loc stackdist.Profile) []appmodel.PhaseSpec {
	return []appmodel.PhaseSpec{{
		Name: name, DurationInsns: 0, BaseCPI: baseCPI, APKI: apki, MLP: mlp, Locality: loc,
	}}
}

// streamLoc is a streaming locality curve: a small residual hit fraction
// (spatial reuse already mostly absorbed by L2) and nothing else.
func streamLoc(residual float64) stackdist.Profile { return stackdist.Streaming(residual) }

// wsLoc is a single-working-set locality curve.
func wsLoc(wsMB float64, maxHit float64) stackdist.Profile {
	return stackdist.WorkingSet(uint64(wsMB*mb), maxHit)
}

// mixLoc blends a resident small set with a large one.
func mixLoc(smallMB, largeMB, wSmall, wLarge float64) stackdist.Profile {
	return stackdist.Mix(
		stackdist.Component{Weight: wSmall, Profile: wsLoc(smallMB, 1)},
		stackdist.Component{Weight: wLarge, Profile: wsLoc(largeMB, 1)},
	)
}

var catalog = map[string]*appmodel.Spec{}

func register(spec *appmodel.Spec) {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if _, dup := catalog[spec.Name]; dup {
		panic("profiles: duplicate spec " + spec.Name)
	}
	catalog[spec.Name] = spec
}

func init() {
	// ------------------------------------------------------------------
	// Streaming aggressors (cache-insensitive, high LLCMPKC).
	// ------------------------------------------------------------------
	register(&appmodel.Spec{
		Name: "lbm06", Class: appmodel.ClassStreaming,
		Phases: steady("stream", 0.60, 55, 9, streamLoc(0.04)),
	})
	register(&appmodel.Spec{
		Name: "lbm17", Class: appmodel.ClassStreaming,
		Phases: steady("stream", 0.55, 60, 9, streamLoc(0.05)),
	})
	register(&appmodel.Spec{
		Name: "libquantum06", Class: appmodel.ClassStreaming,
		Phases: steady("stream", 0.70, 40, 10, streamLoc(0.02)),
	})
	register(&appmodel.Spec{
		Name: "milc06", Class: appmodel.ClassStreaming,
		Phases: steady("stream", 0.70, 32, 6, streamLoc(0.05)),
	})
	register(&appmodel.Spec{
		Name: "gemsfdtd06", Class: appmodel.ClassStreaming,
		Phases: steady("stream", 0.65, 38, 7, streamLoc(0.06)),
	})
	register(&appmodel.Spec{
		Name: "leslie3d06", Class: appmodel.ClassStreaming,
		Phases: steady("stream", 0.75, 28, 6, streamLoc(0.08)),
	})
	// fotonik3d: short light prelude, then streams for the rest of the
	// run (Fig. 4). Dominant class: streaming.
	register(&appmodel.Spec{
		Name: "fotonik3d17", Class: appmodel.ClassStreaming,
		Phases: []appmodel.PhaseSpec{
			{Name: "setup", DurationInsns: 8 * B, BaseCPI: 0.70, APKI: 2.0, MLP: 4, Locality: wsLoc(1.5, 0.9)},
			{Name: "stream", DurationInsns: 0, BaseCPI: 0.65, APKI: 42, MLP: 8, Locality: streamLoc(0.05)},
		},
	})

	// ------------------------------------------------------------------
	// Cache-sensitive applications.
	// ------------------------------------------------------------------
	register(&appmodel.Spec{
		Name: "xalancbmk06", Class: appmodel.ClassSensitive,
		Phases: steady("main", 0.55, 25, 3, wsLoc(20, 0.92)),
	})
	register(&appmodel.Spec{
		Name: "xalancbmk17", Class: appmodel.ClassSensitive,
		Phases: []appmodel.PhaseSpec{
			{Name: "parse", DurationInsns: 25 * B, BaseCPI: 0.55, APKI: 26, MLP: 3, Locality: wsLoc(18, 0.92)},
			{Name: "transform", DurationInsns: 15 * B, BaseCPI: 0.60, APKI: 8, MLP: 3.5, Locality: wsLoc(4, 0.9)},
		},
		LoopPhases: true,
	})
	// omnetpp: pointer-chasing with very low MLP — few LLC misses but a
	// huge slowdown per miss. Programs like this are where miss-driven
	// allocators (UCP/KPart) under-serve fairness: the miss savings look
	// small even though the slowdown at stake is large.
	register(&appmodel.Spec{
		Name: "omnetpp06", Class: appmodel.ClassSensitive,
		Phases: steady("sim", 0.65, 10, 1.6, wsLoc(16, 0.9)),
	})
	register(&appmodel.Spec{
		Name: "omnetpp17", Class: appmodel.ClassSensitive,
		Phases: steady("sim", 0.62, 11, 1.7, wsLoc(22, 0.9)),
	})
	// soplex/sphinx3: the opposite profile — lots of LLC traffic but
	// good MLP, so many misses are saved per way while the slowdown per
	// miss stays moderate.
	register(&appmodel.Spec{
		Name: "soplex06", Class: appmodel.ClassSensitive,
		Phases: steady("solve", 0.58, 34, 5.5, wsLoc(12, 0.9)),
	})
	register(&appmodel.Spec{
		Name: "sphinx306", Class: appmodel.ClassSensitive,
		Phases: steady("decode", 0.60, 28, 5.0, wsLoc(9, 0.92)),
	})
	// mcf: alternates highly sensitive pointer-chasing with quieter
	// bookkeeping (long-term phases, P workloads).
	register(&appmodel.Spec{
		Name: "mcf06", Class: appmodel.ClassSensitive,
		Phases: []appmodel.PhaseSpec{
			{Name: "chase", DurationInsns: 30 * B, BaseCPI: 0.70, APKI: 30, MLP: 2.2, Locality: wsLoc(24, 0.88)},
			{Name: "settle", DurationInsns: 12 * B, BaseCPI: 0.70, APKI: 6, MLP: 3, Locality: wsLoc(3, 0.9)},
		},
		LoopPhases: true,
	})
	// astar: sensitive pathfinding bursts separated by light phases.
	register(&appmodel.Spec{
		Name: "astar06", Class: appmodel.ClassSensitive,
		Phases: []appmodel.PhaseSpec{
			{Name: "path", DurationInsns: 22 * B, BaseCPI: 0.60, APKI: 16, MLP: 2.8, Locality: wsLoc(10, 0.9)},
			{Name: "idle", DurationInsns: 14 * B, BaseCPI: 0.62, APKI: 3, MLP: 3.5, Locality: wsLoc(1.5, 0.9)},
		},
		LoopPhases: true,
	})
	// xz: compression levels cycle between memory-hungry and light.
	register(&appmodel.Spec{
		Name: "xz17", Class: appmodel.ClassSensitive,
		Phases: []appmodel.PhaseSpec{
			{Name: "compress", DurationInsns: 18 * B, BaseCPI: 0.58, APKI: 18, MLP: 3, Locality: wsLoc(14, 0.9)},
			{Name: "entropy", DurationInsns: 16 * B, BaseCPI: 0.60, APKI: 2.5, MLP: 4, Locality: wsLoc(1, 0.92)},
		},
		LoopPhases: true,
	})

	// ------------------------------------------------------------------
	// Light-sharing applications (private-level working sets).
	// ------------------------------------------------------------------
	light := func(name string, baseCPI, apki, wsMB, maxHit float64) {
		register(&appmodel.Spec{
			Name: name, Class: appmodel.ClassLight,
			Phases: steady("steady", baseCPI, apki, 4, wsLoc(wsMB, maxHit)),
		})
	}
	light("gamess06", 0.45, 0.4, 0.5, 0.95)
	light("povray06", 0.50, 0.3, 0.5, 0.95)
	light("povray17", 0.48, 0.4, 0.6, 0.95)
	light("namd06", 0.55, 0.8, 1.0, 0.92)
	light("tonto06", 0.52, 1.2, 1.2, 0.92)
	light("gromacs06", 0.58, 1.0, 0.8, 0.93)
	light("h264ref06", 0.50, 1.5, 1.5, 0.93)
	light("hmmer06", 0.47, 0.6, 0.7, 0.95)
	light("sjeng06", 0.60, 1.8, 1.8, 0.9)
	light("gobmk06", 0.62, 2.0, 1.6, 0.9)
	light("deepsjeng17", 0.58, 2.2, 2.0, 0.9)
	light("exchange217", 0.42, 0.2, 0.4, 0.95)
	light("leela17", 0.56, 1.4, 1.4, 0.92)
	light("nab17", 0.54, 1.6, 1.2, 0.92)
	light("imagick17", 0.50, 1.0, 1.0, 0.93)
	// Moderate lights: some LLC traffic but fits in one or two ways.
	register(&appmodel.Spec{
		Name: "bzip206", Class: appmodel.ClassLight,
		Phases: steady("steady", 0.55, 7, 4, wsLoc(2.6, 0.88)),
	})
	register(&appmodel.Spec{
		Name: "cactusadm06", Class: appmodel.ClassLight,
		Phases: steady("steady", 0.60, 5, 5, mixLoc(1.5, 40, 0.8, 0.1)),
	})
	register(&appmodel.Spec{
		Name: "cactubssn17", Class: appmodel.ClassLight,
		Phases: steady("steady", 0.58, 6, 5, mixLoc(2.0, 50, 0.78, 0.1)),
	})
}

// Names returns the catalog's benchmark names in sorted order.
func Names() []string {
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get returns the spec for a benchmark name.
func Get(name string) (*appmodel.Spec, error) {
	s, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("profiles: unknown benchmark %q", name)
	}
	return s, nil
}

// MustGet is Get that panics on unknown names.
func MustGet(name string) *appmodel.Spec {
	s, err := Get(name)
	if err != nil {
		panic(err)
	}
	return s
}

// ByClass returns the names of the catalog entries with the given
// ground-truth class, sorted.
func ByClass(c appmodel.Class) []string {
	var out []string
	for n, s := range catalog {
		if s.Class == c {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Phased returns the names of catalog entries with multiple phases.
func Phased() []string {
	var out []string
	for n, s := range catalog {
		if s.Phased() {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
