package calibrate

import (
	"testing"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/cache"
	"github.com/faircache/lfoc/internal/machine"
)

// small geometry keeps Mattson passes fast: 256 sets × 8 ways × 64 B =
// 128 KiB, one "way" = 16 KiB.
func smallGeom() Geometry { return Geometry{Sets: 256, Ways: 8, LineBytes: 64} }

func TestGeometryValidate(t *testing.T) {
	if (Geometry{Sets: 3, Ways: 4, LineBytes: 64}).Validate() == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if (Geometry{Sets: 4, Ways: 0, LineBytes: 64}).Validate() == nil {
		t.Error("zero ways accepted")
	}
	if (Geometry{Sets: 4, Ways: 4, LineBytes: 0}).Validate() == nil {
		t.Error("zero line accepted")
	}
	g := smallGeom()
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	if g.CapacityBytes() != 256*8*64 {
		t.Error("capacity wrong")
	}
}

func TestProfileTraceErrors(t *testing.T) {
	if _, err := ProfileTrace(cache.NewStreamTrace(64), 0, smallGeom()); err == nil {
		t.Error("zero accesses accepted")
	}
	if _, err := ProfileTrace(cache.NewStreamTrace(64), 10, Geometry{}); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestStreamTraceProfilesAsStreaming(t *testing.T) {
	g := smallGeom()
	p, err := ProfileTrace(cache.NewStreamTrace(64), 20000, g)
	if err != nil {
		t.Fatal(err)
	}
	if hr := p.HitRatio(g.CapacityBytes()); hr > 0.01 {
		t.Errorf("stream trace hit ratio = %v, want ~0", hr)
	}
}

func TestLoopTraceProfilesAsResident(t *testing.T) {
	g := smallGeom()
	ws := uint64(3 * 16 * 1024) // fits in 3 ways
	mk := func() cache.TraceGen { return cache.NewLoopTrace(0, ws, 64) }
	p, err := ProfileTrace(mk(), 40000, g)
	if err != nil {
		t.Fatal(err)
	}
	if mr := p.MissRatio(4 * 16 * 1024); mr > 0.05 {
		t.Errorf("resident loop analytic miss ratio = %v", mr)
	}
	if mr := p.MissRatio(1 * 16 * 1024); mr < 0.9 {
		t.Errorf("thrashing loop analytic miss ratio = %v (LRU loop must thrash)", mr)
	}
}

func TestBuildPhaseClassification(t *testing.T) {
	// Scale the platform down to the profiling geometry so way counts
	// align, then check the Table 1 oracle sees the expected classes.
	g := smallGeom()
	plat := machine.Skylake()
	plat.Ways = g.Ways
	plat.WayBytes = uint64(g.Sets) * g.LineBytes

	crit := appmodel.DefaultCriteria()

	stream, err := BuildPhase("stream", cache.NewStreamTrace(64), 20000, g, 0.6, 55, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got := crit.Classify(appmodel.BuildTable(&stream, plat)); got != appmodel.ClassStreaming {
		t.Errorf("stream trace classified %v", got)
	}

	// A working set of ~6 ways with strong reuse behaves sensitively.
	ws := uint64(6 * 16 * 1024)
	sens, err := BuildPhase("loop", cache.NewLoopTrace(0, ws, 64), 60000, g, 0.55, 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := crit.Classify(appmodel.BuildTable(&sens, plat)); got != appmodel.ClassSensitive {
		t.Errorf("loop trace classified %v", got)
	}

	light, err := BuildPhase("tiny", cache.NewLoopTrace(0, 4096, 64), 20000, g, 0.5, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := crit.Classify(appmodel.BuildTable(&light, plat)); got != appmodel.ClassLight {
		t.Errorf("tiny loop classified %v", got)
	}

	// Invalid CPU parameters are rejected.
	if _, err := BuildPhase("bad", cache.NewStreamTrace(64), 100, g, 0, 1, 1); err == nil {
		t.Error("invalid phase accepted")
	}
}

func TestCrossValidateZipf(t *testing.T) {
	// A Zipf trace exercises the whole curve; the analytic (fully
	// associative) profile must track the set-associative simulator
	// within a loose tolerance at every way count.
	g := smallGeom()
	const accesses = 60000
	mk := func() cache.TraceGen { return cache.NewZipfTrace(99, 0, 1<<20, 64, 1.1) }
	profile, err := ProfileTrace(mk(), accesses, g)
	if err != nil {
		t.Fatal(err)
	}
	points, err := CrossValidate(mk, accesses, g, profile)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != g.Ways {
		t.Fatalf("points = %d", len(points))
	}
	if worst := MaxAbsError(points); worst > 0.12 {
		t.Errorf("analytic vs simulated miss ratios diverge by %.3f: %+v", worst, points)
	}
	// Both curves must be monotone nonincreasing.
	for i := 1; i < len(points); i++ {
		if points[i].Analytic > points[i-1].Analytic+1e-9 {
			t.Error("analytic curve not monotone")
		}
		if points[i].Simulated > points[i-1].Simulated+0.02 {
			t.Error("simulated curve not monotone")
		}
	}
}

func TestCrossValidateStream(t *testing.T) {
	g := smallGeom()
	mk := func() cache.TraceGen { return cache.NewStreamTrace(64) }
	profile, err := ProfileTrace(mk(), 20000, g)
	if err != nil {
		t.Fatal(err)
	}
	points, err := CrossValidate(mk, 20000, g, profile)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Simulated < 0.99 || p.Analytic < 0.99 {
			t.Errorf("stream should miss always: %+v", p)
		}
	}
	if MaxAbsError(nil) != 0 {
		t.Error("empty MaxAbsError should be 0")
	}
}
