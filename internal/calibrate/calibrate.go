// Package calibrate bridges the repository's two cache-model levels: the
// trace-driven way-partitioned LLC (internal/cache, the CAT data plane)
// and the analytic stack-distance profiles (internal/stackdist) that the
// contention model and the policies consume.
//
// It plays the role of the paper's offline profiling runs: instead of
// executing SPEC binaries under performance counters, it executes
// synthetic address traces against the cache model and distills them into
// appmodel.PhaseSpec entries. It also provides the cross-validation used
// by tests: the analytic miss-ratio curve of a profiled trace must agree
// with what the set-associative simulator actually measures at each way
// count, which pins the analytic model to the "hardware".
package calibrate

import (
	"fmt"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/cache"
	"github.com/faircache/lfoc/internal/cat"
	"github.com/faircache/lfoc/internal/stackdist"
)

// Geometry describes the (possibly scaled-down) LLC used for trace
// profiling.
type Geometry struct {
	Sets      int
	Ways      int
	LineBytes uint64
}

// CapacityBytes returns the total modeled capacity.
func (g Geometry) CapacityBytes() uint64 {
	return uint64(g.Sets) * uint64(g.Ways) * g.LineBytes
}

// Validate checks the geometry.
func (g Geometry) Validate() error {
	if g.Sets <= 0 || g.Sets&(g.Sets-1) != 0 {
		return fmt.Errorf("calibrate: sets must be a positive power of two")
	}
	if g.Ways < 1 || g.Ways > 32 {
		return fmt.Errorf("calibrate: ways out of range")
	}
	if g.LineBytes == 0 {
		return fmt.Errorf("calibrate: zero line size")
	}
	return nil
}

// ProfileTrace runs a Mattson reuse-distance pass over `accesses`
// addresses from gen and returns the locality profile with knots at every
// way-multiple of the geometry's capacity.
func ProfileTrace(gen cache.TraceGen, accesses int, g Geometry) (stackdist.Profile, error) {
	if err := g.Validate(); err != nil {
		return stackdist.Profile{}, err
	}
	if accesses <= 0 {
		return stackdist.Profile{}, fmt.Errorf("calibrate: need a positive access count")
	}
	prof := stackdist.NewProfiler(g.LineBytes)
	for i := 0; i < accesses; i++ {
		prof.Access(gen.Next())
	}
	sizes := make([]uint64, 0, g.Ways)
	wayBytes := uint64(g.Sets) * g.LineBytes
	for w := 1; w <= g.Ways; w++ {
		sizes = append(sizes, uint64(w)*wayBytes)
	}
	return prof.Profile(sizes), nil
}

// BuildPhase profiles a trace and wraps the result in a PhaseSpec with
// the given CPU-side parameters, producing an application model whose
// locality was *measured* rather than hand-specified.
func BuildPhase(name string, gen cache.TraceGen, accesses int, g Geometry, baseCPI, apki, mlp float64) (appmodel.PhaseSpec, error) {
	loc, err := ProfileTrace(gen, accesses, g)
	if err != nil {
		return appmodel.PhaseSpec{}, err
	}
	ph := appmodel.PhaseSpec{
		Name:     name,
		BaseCPI:  baseCPI,
		APKI:     apki,
		MLP:      mlp,
		Locality: loc,
	}
	if err := ph.Validate(); err != nil {
		return appmodel.PhaseSpec{}, err
	}
	return ph, nil
}

// ValidationPoint compares the analytic and simulated miss ratios at one
// allocation.
type ValidationPoint struct {
	Ways      int
	Analytic  float64
	Simulated float64
}

// CrossValidate replays a trace twice per way count — once to warm the
// way-partitioned LLC, once to measure — and compares the measured miss
// ratio against the analytic profile's prediction. Generators produced by
// fresh() must be deterministic replicas of the profiled trace.
func CrossValidate(fresh func() cache.TraceGen, accesses int, g Geometry, profile stackdist.Profile) ([]ValidationPoint, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	const task = cat.TaskID(1)
	out := make([]ValidationPoint, 0, g.Ways)
	for w := 1; w <= g.Ways; w++ {
		llc, err := cache.New(g.Sets, g.Ways, g.LineBytes)
		if err != nil {
			return nil, err
		}
		if err := llc.SetMask(task, cat.MaskRange(0, w)); err != nil {
			return nil, err
		}
		warm := fresh()
		for i := 0; i < accesses; i++ {
			llc.Access(task, warm.Next())
		}
		llc.ResetStats()
		measure := fresh()
		for i := 0; i < accesses; i++ {
			llc.Access(task, measure.Next())
		}
		st := llc.Stats(task)
		out = append(out, ValidationPoint{
			Ways:      w,
			Analytic:  profile.MissRatio(uint64(w) * uint64(g.Sets) * g.LineBytes),
			Simulated: st.MissRatio(),
		})
	}
	return out, nil
}

// MaxAbsError returns the largest |analytic − simulated| disagreement.
func MaxAbsError(points []ValidationPoint) float64 {
	worst := 0.0
	for _, p := range points {
		d := p.Analytic - p.Simulated
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
