// Package profiling wires the standard pprof profiles into the CLIs,
// so perf investigations start from a profile instead of a guess:
//
//	lfoc-sim -workload S1 -arrivals poisson:4 -cpuprofile cpu.pb.gz
//	lfoc-bench -sim -memprofile mem.pb.gz
//	go tool pprof cpu.pb.gz
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Start begins CPU profiling (when cpuPath is non-empty) and returns a
// stop function that finishes the CPU profile and writes the heap
// profile (when memPath is non-empty). The stop function is idempotent
// and safe on error paths, so commands can both defer it and call it
// before os.Exit.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		cpuFile = f
	}
	var once sync.Once
	stop := func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					fmt.Fprintln(os.Stderr, "profiling:", err)
					return
				}
				defer f.Close()
				runtime.GC() // materialize the live heap before the snapshot
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "profiling:", err)
				}
			}
		})
	}
	return stop, nil
}
