// Benchmarks regenerating the paper's tables and figures (one benchmark
// per artifact, §5 evaluation + §3 analysis), plus ablation benchmarks
// for the design choices called out in DESIGN.md.
//
// Figure benchmarks run reduced-size configurations so `go test -bench=.`
// stays tractable; cmd/lfoc-bench regenerates the full artifacts.
package lfoc

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/cache"
	"github.com/faircache/lfoc/internal/cat"
	"github.com/faircache/lfoc/internal/core"
	fp "github.com/faircache/lfoc/internal/fixedpoint"
	"github.com/faircache/lfoc/internal/harness"
	"github.com/faircache/lfoc/internal/lookahead"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/pbb"
	"github.com/faircache/lfoc/internal/policy"
	"github.com/faircache/lfoc/internal/profiles"
	"github.com/faircache/lfoc/internal/sharing"
	"github.com/faircache/lfoc/internal/workloads"
)

func benchConfig() harness.Config {
	cfg := harness.DefaultConfig()
	cfg.Scale = 200
	cfg.SolverBudgetSmall = 50_000
	cfg.SolverBudgetLarge = 1_000
	return cfg
}

// BenchmarkFig1Profiles regenerates Fig. 1 (slowdown & LLCMPKC curves
// for lbm and xalancbmk).
func BenchmarkFig1Profiles(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		d := harness.Fig1(cfg)
		if len(d.Lbm) != cfg.Plat.Ways {
			b.Fatal("bad curve")
		}
	}
}

// BenchmarkFig2OptimalStructure regenerates Fig. 2 (optimal-clustering
// structure) over a reduced mix count.
func BenchmarkFig2OptimalStructure(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		d, err := harness.Fig2(cfg, 3)
		if err != nil {
			b.Fatal(err)
		}
		if d.StreamingIn1Way < 0.5 {
			b.Fatal("unexpected structure")
		}
	}
}

// BenchmarkFig3ClusteringVsPartitioning regenerates Fig. 3 (optimal
// clustering vs optimal partitioning) with one mix per size.
func BenchmarkFig3ClusteringVsPartitioning(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		d, err := harness.Fig3(cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Rows) != 8 {
			b.Fatal("bad rows")
		}
	}
}

// BenchmarkFig4PhaseTrace regenerates Fig. 4 (fotonik3d's LLCMPKC trace).
func BenchmarkFig4PhaseTrace(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		d := harness.Fig4(cfg, 160)
		if d.PhaseChange <= 0 {
			b.Fatal("no phase change")
		}
	}
}

// BenchmarkFig5WorkloadMatrix regenerates Fig. 5 (workload composition).
func BenchmarkFig5WorkloadMatrix(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		d := harness.Fig5(cfg)
		if len(d.Workloads) != 36 {
			b.Fatal("bad matrix")
		}
	}
}

// BenchmarkFig6StaticClustering regenerates one workload's slice of
// Fig. 6 (all static policies vs stock).
func BenchmarkFig6StaticClustering(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		d, err := harness.Fig6(cfg, []string{"S1"})
		if err != nil {
			b.Fatal(err)
		}
		if d.Rows[0].NormUnf[2] >= 1 { // LFOC must beat stock
			b.Fatal("LFOC did not improve fairness")
		}
	}
}

// BenchmarkFig7DynamicPolicies regenerates one workload's slice of
// Fig. 7 (dynamic Stock/Dunn/LFOC).
func BenchmarkFig7DynamicPolicies(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		d, err := harness.Fig7(cfg, []string{"P1"})
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Rows) != 1 {
			b.Fatal("bad rows")
		}
	}
}

// table2Inputs builds the partitioning-algorithm inputs for a size.
func table2Inputs(n int) ([]core.AppInfo, *policy.Workload, core.Params) {
	plat := machine.Skylake()
	w := workloads.RandomMix(int64(7000+n), n)
	sw := &policy.Workload{Plat: plat}
	for _, name := range w.Benchmarks {
		spec := profiles.MustGet(name)
		ph := &spec.Phases[0]
		sw.Phases = append(sw.Phases, ph)
		sw.Tables = append(sw.Tables, appmodel.BuildTable(ph, plat))
	}
	params := core.DefaultParams(plat.Ways)
	infos := make([]core.AppInfo, n)
	for i, t := range sw.Tables {
		prof := policy.ProfileFromTable(t)
		infos[i] = core.AppInfo{ID: i, Class: core.Classify(prof, &params), Profile: prof}
	}
	return infos, sw, params
}

// BenchmarkTable2LFOC measures LFOC's partitioning algorithm (Table 2,
// top row) for every workload size the paper reports.
func BenchmarkTable2LFOC(b *testing.B) {
	for n := 4; n <= 11; n++ {
		infos, _, params := table2Inputs(n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Partition(infos, &params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2KPart measures KPart's algorithm (Table 2, bottom row).
func BenchmarkTable2KPart(b *testing.B) {
	for n := 4; n <= 11; n++ {
		_, sw, _ := table2Inputs(n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (policy.KPart{}).Decide(sw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string { return fmt.Sprintf("apps-%02d", n) }

// ---------------------------------------------------------------------
// Ablation benchmarks (DESIGN.md §4).
// ---------------------------------------------------------------------

// BenchmarkAblationFixedVsFloat contrasts the fixed-point arithmetic the
// kernel constraint forces on LFOC with the float math it forgoes.
func BenchmarkAblationFixedVsFloat(b *testing.B) {
	b.Run("fixedpoint", func(b *testing.B) {
		x := fp.FromMilli(1537)
		y := fp.FromMilli(1031)
		var acc fp.Value
		for i := 0; i < b.N; i++ {
			acc += fp.Div(fp.Mul(x, y), y)
		}
		_ = acc
	})
	b.Run("float64", func(b *testing.B) {
		x, y := 1.537, 1.031
		var acc float64
		for i := 0; i < b.N; i++ {
			acc += x * y / y
		}
		_ = acc
	})
}

// BenchmarkAblationSamplingSweep contrasts LFOC's early-stopping upward
// sweep with a KPart-style full sweep on a streaming application: the
// early stop terminates after ~FlatStepsToStop+1 windows instead of
// ways−1.
func BenchmarkAblationSamplingSweep(b *testing.B) {
	params := core.DefaultParams(11)
	streamIPC := fp.FromMilli(520)
	streamMPKC := fp.FromInt(26)
	b.Run("early-stop", func(b *testing.B) {
		steps := 0
		for i := 0; i < b.N; i++ {
			s := core.NewSampling(&params)
			for !s.Done() {
				s.Record(streamIPC, streamMPKC)
			}
			steps = s.Steps()
		}
		b.ReportMetric(float64(steps), "windows/episode")
	})
	b.Run("full-sweep", func(b *testing.B) {
		full := params
		// Disable both early-stop rules.
		full.LowThresholdMPKC = 0
		full.FlatStepsToStop = 1 << 30
		steps := 0
		for i := 0; i < b.N; i++ {
			s := core.NewSampling(&full)
			for !s.Done() {
				s.Record(streamIPC, streamMPKC)
			}
			steps = s.Steps()
		}
		b.ReportMetric(float64(steps), "windows/episode")
	})
}

// BenchmarkAblationSolverSeeding contrasts the optimal solver with and
// without the LFOC warm start that makes its anytime mode effective.
func BenchmarkAblationSolverSeeding(b *testing.B) {
	plat := machine.Skylake()
	w := workloads.RandomMix(11, 9)
	var phases []*appmodel.PhaseSpec
	sw := &policy.Workload{Plat: plat}
	for _, name := range w.Benchmarks {
		spec := profiles.MustGet(name)
		ph := &spec.Phases[0]
		phases = append(phases, ph)
		sw.Phases = append(sw.Phases, ph)
		sw.Tables = append(sw.Tables, appmodel.BuildTable(ph, plat))
	}
	seed, err := (policy.LFOCStatic{}).Decide(sw)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, seeded bool) {
		for i := 0; i < b.N; i++ {
			s := pbb.New(plat)
			if seeded {
				s.Seeds = append(s.Seeds, seed)
			}
			if _, err := s.OptimalClustering(phases, pbb.Fairness); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("seeded", func(b *testing.B) { run(b, true) })
	b.Run("unseeded", func(b *testing.B) { run(b, false) })
}

// BenchmarkContentionModel measures one co-run equilibrium evaluation
// (the inner loop of both the solver and the simulator) through the
// compatibility map API.
func BenchmarkContentionModel(b *testing.B) {
	plat := machine.Skylake()
	model := sharing.NewModel(plat)
	var apps []sharing.App
	names := []string{"xalancbmk06", "soplex06", "lbm06", "milc06", "povray06", "namd06", "omnetpp06", "gamess06"}
	for i, n := range names {
		apps = append(apps, sharing.App{ID: i, Phase: &profiles.MustGet(n).Phases[0], Mask: cat.FullMask(plat.Ways)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := model.Evaluate(apps)
		if len(res) != len(apps) {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkContentionModelSession measures the same equilibrium through
// the reusable Evaluator session (the allocation-free hot path the
// solver and simulator actually use).
func BenchmarkContentionModelSession(b *testing.B) {
	plat := machine.Skylake()
	model := sharing.NewModel(plat)
	eval := sharing.NewEvaluator(model)
	var apps []sharing.App
	names := []string{"xalancbmk06", "soplex06", "lbm06", "milc06", "povray06", "namd06", "omnetpp06", "gamess06"}
	for i, n := range names {
		apps = append(apps, sharing.App{ID: i, Phase: &profiles.MustGet(n).Phases[0], Mask: cat.FullMask(plat.Ways)})
	}
	var res []sharing.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = eval.EvaluateInto(res, apps)
		if len(res) != len(apps) {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkSolverWorkers measures the branch-and-bound's scaling with
// worker count on a 9-app clustering search: the lock-free read path
// must let Workers=GOMAXPROCS beat (or on a single-core machine, match)
// Workers=1.
func BenchmarkSolverWorkers(b *testing.B) {
	plat := machine.Skylake()
	w := workloads.RandomMix(11, 9)
	var phases []*appmodel.PhaseSpec
	for _, name := range w.Benchmarks {
		phases = append(phases, &profiles.MustGet(name).Phases[0])
	}
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	} else {
		counts = append(counts, 4) // exercise the pool even on 1 CPU
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := pbb.New(plat)
				s.Workers = workers
				if _, err := s.OptimalClustering(phases, pbb.Fairness); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLLCAccess measures the trace-driven way-partitioned LLC model.
func BenchmarkLLCAccess(b *testing.B) {
	llc, err := cache.New(1024, 11, 64)
	if err != nil {
		b.Fatal(err)
	}
	_ = llc.SetMask(1, cat.MaskRange(0, 4))
	tr := cache.NewZipfTrace(1, 0, 1<<24, 64, 1.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		llc.Access(1, tr.Next())
	}
}

// BenchmarkLookahead measures the shared way-distribution primitive.
func BenchmarkLookahead(b *testing.B) {
	util := make([][]int64, 8)
	for i := range util {
		u := make([]int64, 12)
		for w := 1; w <= 11; w++ {
			u[w] = int64(w * (i + 1) * 10)
		}
		util[i] = u
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lookahead.Allocate(util, 11); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Simulator-throughput benchmarks (the BENCH_sim.json rows; DESIGN.md §2).
// ---------------------------------------------------------------------

// benchSimCase times one harness.SimBenchCases workload — the same
// definitions lfoc-bench -sim measures into the gated BENCH_sim.json,
// so the bench smoke can never drift from the baseline — reporting the
// exact simulated-tick throughput.
func benchSimCase(b *testing.B, name string) {
	cases, err := harness.SimBenchCases(harness.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range cases {
		if c.Name != name {
			continue
		}
		var ticks float64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if ticks, err = c.Run(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(ticks*float64(b.N)/b.Elapsed().Seconds(), "ticks/sec")
		return
	}
	b.Fatalf("no sim bench case %q", name)
}

// BenchmarkSimClosed measures the closed-batch methodology (S1, LFOC)
// through the kernel's event-horizon advancement.
func BenchmarkSimClosed(b *testing.B) { benchSimCase(b, "closed-batch") }

// BenchmarkSimOpenChurn measures an open-system churn run (S1, seeded
// Poisson arrivals, LFOC).
func BenchmarkSimOpenChurn(b *testing.B) { benchSimCase(b, "open-churn") }

// BenchmarkSimCluster4 measures a 4-machine cluster behind one arrival
// stream (fairness-aware placement, serial advancement); ticks/sec
// counts every machine's ticks.
func BenchmarkSimCluster4(b *testing.B) { benchSimCase(b, "cluster-4") }

// BenchmarkSimCluster1k measures the 1024-machine heterogeneous fleet
// under Poisson churn — the sparse-fleet regime the lazy fleet event
// queue exists for. ticks/sec counts simulated ticks over the whole
// fleet: idle machines' windows are simulated without being executed,
// so a return to eager per-arrival barriers collapses this figure.
func BenchmarkSimCluster1k(b *testing.B) { benchSimCase(b, "cluster-1k") }
