module github.com/faircache/lfoc

go 1.23
