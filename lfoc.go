// Package lfoc is a from-scratch Go reproduction of "LFOC: A Lightweight
// Fairness-Oriented Cache Clustering Policy for Commodity Multicores"
// (Garcia-Garcia, Saez, Castro, Prieto-Matias — ICPP 2019).
//
// The package re-exports the library's public surface:
//
//   - the LFOC controller itself (the paper's contribution): an integer
//     arithmetic, kernel-style runtime that classifies applications online
//     (streaming / sensitive / light-sharing), samples their cache
//     sensitivity with an early-stopping way sweep, and clusters them onto
//     Intel-CAT-style way partitions with UCP's lookahead;
//   - the baselines the paper compares against: stock Linux, UCP, Dunn
//     and KPart, plus Best-Static driven by a PBBCache-style parallel
//     branch-and-bound optimal solver;
//   - the experimental substrate: a Skylake-like platform model, a
//     synthetic SPEC CPU2006/2017 application catalog, the co-run
//     contention model, a deterministic co-scheduling simulator
//     implementing the paper's measurement methodology, and the harness
//     that regenerates every figure and table of the evaluation.
//
// Quick start:
//
//	cfg := lfoc.DefaultExperimentConfig()
//	ctrl, _, _ := cfg.NewDynamicPolicy("lfoc")
//	w, _ := lfoc.GetWorkload("S1")
//	res, _ := lfoc.RunDynamic(cfg.SimConfig(), w.ScaledSpecs(cfg.Scale), ctrl)
//	fmt.Println(res.Summary.Unfairness, res.Summary.STP)
//
// See the examples/ directory for complete programs and DESIGN.md for
// the system inventory.
package lfoc

import (
	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/cat"
	"github.com/faircache/lfoc/internal/cluster"
	"github.com/faircache/lfoc/internal/core"
	"github.com/faircache/lfoc/internal/harness"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/metrics"
	"github.com/faircache/lfoc/internal/pbb"
	"github.com/faircache/lfoc/internal/plan"
	"github.com/faircache/lfoc/internal/policy"
	"github.com/faircache/lfoc/internal/profiles"
	"github.com/faircache/lfoc/internal/resctrl"
	"github.com/faircache/lfoc/internal/sharing"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/sim/scenario"
	"github.com/faircache/lfoc/internal/workloads"
)

// ---------------------------------------------------------------------
// Platform.
// ---------------------------------------------------------------------

// Platform describes a CAT-capable multicore (ways, way size, latencies,
// bandwidth).
type Platform = machine.Platform

// Skylake returns the paper's experimental platform: a Xeon Gold 6138
// with an 11-way 27.5 MB way-partitionable LLC.
func Skylake() *Platform { return machine.Skylake() }

// SmallPlatform returns a reduced platform for experimentation.
func SmallPlatform(ways, cores int) *Platform { return machine.Small(ways, cores) }

// ---------------------------------------------------------------------
// Application models.
// ---------------------------------------------------------------------

// Spec is a synthetic application: a sequence of phases with stack-
// distance locality profiles.
type Spec = appmodel.Spec

// PhaseSpec is one steady-state phase of an application.
type PhaseSpec = appmodel.PhaseSpec

// ProfileTable holds an application's offline per-way-count performance
// curves (IPC, LLCMPKC, MPKI, stalls, bandwidth).
type ProfileTable = appmodel.Table

// AppClass is the ground-truth taxonomy of catalog applications
// (distinct from Class, LFOC's *runtime* classification).
type AppClass = appmodel.Class

// Ground-truth class values.
const (
	AppLight     = appmodel.ClassLight
	AppStreaming = appmodel.ClassStreaming
	AppSensitive = appmodel.ClassSensitive
)

// Benchmarks lists the synthetic SPEC CPU2006/2017 catalog.
func Benchmarks() []string { return profiles.Names() }

// BenchmarksByClass lists catalog entries with a ground-truth class.
func BenchmarksByClass(c AppClass) []string { return profiles.ByClass(c) }

// Benchmark returns a catalog application model by name (e.g. "lbm06").
func Benchmark(name string) (*Spec, error) { return profiles.Get(name) }

// BuildProfile computes a phase's offline profile table on a platform.
func BuildProfile(ph *PhaseSpec, plat *Platform) *ProfileTable {
	return appmodel.BuildTable(ph, plat)
}

// ---------------------------------------------------------------------
// Plans, metrics, contention model.
// ---------------------------------------------------------------------

// Plan is a cache-clustering decision: clusters of applications with way
// counts.
type Plan = plan.Plan

// Cluster is one cache partition of a Plan.
type Cluster = plan.Cluster

// Summary bundles a workload's unfairness (Eq. 3) and STP (Eq. 4).
type Summary = metrics.Summary

// Unfairness computes MAX/MIN of the slowdowns (Eq. 3).
func Unfairness(slowdowns []float64) (float64, error) { return metrics.Unfairness(slowdowns) }

// STP computes the system throughput / weighted speedup (Eq. 4).
func STP(slowdowns []float64) (float64, error) { return metrics.STP(slowdowns) }

// ContentionModel estimates co-run performance under a CAT configuration
// (the PBBCache-style analytic model).
type ContentionModel = sharing.Model

// NewContentionModel creates a contention model for a platform.
func NewContentionModel(plat *Platform) *ContentionModel { return sharing.NewModel(plat) }

// EstimateSlowdowns evaluates a plan with the contention model: one
// dominant phase per application, slowdowns relative to running alone.
func EstimateSlowdowns(m *ContentionModel, phases []*PhaseSpec, p Plan) ([]float64, error) {
	return sharing.EvaluatePlan(m, phases, p)
}

// ---------------------------------------------------------------------
// The LFOC controller (the paper's contribution).
// ---------------------------------------------------------------------

// Controller is the OS-level LFOC runtime: online classification,
// early-stopping sampling mode, phase-change heuristics and the
// Algorithm 1 partitioner. All arithmetic is fixed-point.
type Controller = core.Controller

// Params are LFOC's tunables (Table 1 thresholds, Algorithm 1 knobs,
// monitoring cadences).
type Params = core.Params

// DefaultParams returns the paper's configuration for a k-way LLC.
func DefaultParams(nrWays int) Params { return core.DefaultParams(nrWays) }

// NewController creates an LFOC controller (wayBytes = per-way LLC
// capacity, for CMT-based critical-size checks).
func NewController(params Params, wayBytes uint64) (*Controller, error) {
	return core.NewController(params, wayBytes)
}

// Class is LFOC's runtime application classification.
type Class = core.Class

// Classification values.
const (
	ClassUnknown   = core.ClassUnknown
	ClassLight     = core.ClassLight
	ClassStreaming = core.ClassStreaming
	ClassSensitive = core.ClassSensitive
)

// ---------------------------------------------------------------------
// Baseline policies.
// ---------------------------------------------------------------------

// StaticPolicy decides a clustering once from offline profiles (§5.1).
type StaticPolicy = policy.Static

// StaticWorkload is the static policies' input.
type StaticWorkload = policy.Workload

// Static policy implementations.
type (
	// StockPolicy shares the whole LLC (no partitioning).
	StockPolicy = policy.Stock
	// UCPPolicy is utility-based strict partitioning (throughput).
	UCPPolicy = policy.UCP
	// DunnPolicy is the stalls-driven k-means clustering baseline.
	DunnPolicy = policy.Dunn
	// KPartPolicy is the hierarchical partitioning-sharing baseline.
	KPartPolicy = policy.KPart
	// LFOCStaticPolicy runs LFOC's algorithm once over offline data.
	LFOCStaticPolicy = policy.LFOCStatic
	// BestStaticPolicy is the optimal-fairness clustering reference.
	BestStaticPolicy = policy.BestStatic
)

// NewDunnDynamic creates the user-level dynamic Dunn runtime.
func NewDunnDynamic(ways int) *policy.DunnDynamic { return policy.NewDunnDynamic(ways) }

// NewStockDynamic creates the dynamic no-partitioning baseline.
func NewStockDynamic(ways int) *policy.StockDynamic { return policy.NewStockDynamic(ways) }

// NewKPartDynaway creates the dynamic KPart runtime ("KPart-Dynaway") —
// the paper's future-work item implemented here as an extension: full
// downward profiling sweeps plus periodic re-profiling, i.e. exactly the
// overheads LFOC's early-stopping sampling avoids.
func NewKPartDynaway(ways int) *policy.KPartDynaway { return policy.NewKPartDynaway(ways) }

// ---------------------------------------------------------------------
// Optimal solver (PBBCache reimplementation).
// ---------------------------------------------------------------------

// Solver determines optimal cache-clustering/partitioning solutions with
// a parallel branch-and-bound search.
type Solver = pbb.Solver

// Solution is the solver's result.
type Solution = pbb.Solution

// Solver objectives.
const (
	OptimizeFairness   = pbb.Fairness
	OptimizeThroughput = pbb.Throughput
)

// NewSolver creates a solver for a platform.
func NewSolver(plat *Platform) *Solver { return pbb.New(plat) }

// ---------------------------------------------------------------------
// Simulator (the testbed substitute).
// ---------------------------------------------------------------------

// SimConfig parameterizes a co-run simulation.
type SimConfig = sim.Config

// SimResult carries completion times, slowdowns, unfairness and STP.
type SimResult = sim.Result

// DynamicPolicy is the interface the simulator drives; *Controller,
// *policy.DunnDynamic and *policy.StockDynamic implement it.
type DynamicPolicy = sim.Dynamic

// RunDynamic co-runs a workload under a dynamic policy with the paper's
// restart-until-three-completions methodology.
func RunDynamic(cfg SimConfig, specs []*Spec, pol DynamicPolicy) (*SimResult, error) {
	return sim.RunDynamic(cfg, specs, pol)
}

// RunStatic co-runs a workload under a fixed clustering plan.
func RunStatic(cfg SimConfig, specs []*Spec, p Plan) (*SimResult, error) {
	return sim.RunStatic(cfg, specs, p)
}

// ---------------------------------------------------------------------
// Scenarios (the kernel/scenario split of the simulator).
// ---------------------------------------------------------------------

// Scenario shapes one experiment over the scenario-agnostic simulation
// kernel: which applications exist, when they arrive, and what happens
// when one retires its instruction quota.
type Scenario = scenario.Scenario

// ClosedScenario is the paper's §5 closed-batch methodology as a
// scenario value (RunDynamic is exactly this scenario); its
// ResetIdentityOnRestart knob makes every restart look like an
// exit+spawn so policies must re-learn classes.
type ClosedScenario = scenario.Closed

// OpenScenario is the open-system scenario: applications arrive from a
// seeded Poisson process or an explicit trace, run their quota once,
// and depart.
type OpenScenario = scenario.Open

// ScenarioArrival schedules one application entering an open system.
type ScenarioArrival = scenario.Arrival

// OpenSimResult carries an open run's per-app outcomes and windowed
// metric series.
type OpenSimResult = sim.OpenResult

// WindowedSeries is the time-windowed metric trajectory of a run.
type WindowedSeries = metrics.WindowedSeries

// NewClosedScenario builds the closed scenario for a workload.
func NewClosedScenario(specs []*Spec, runsTarget int) *ClosedScenario {
	return scenario.NewClosed(specs, runsTarget)
}

// NewPoissonScenario builds an open scenario with seeded Poisson
// arrivals (rate per simulated second over [0, window) seconds) drawn
// uniformly from pool.
func NewPoissonScenario(name string, pool []*Spec, rate, window float64, seed int64) (*OpenScenario, error) {
	return scenario.NewPoisson(name, pool, rate, window, seed)
}

// NewTraceScenario builds an open scenario from an explicit arrival
// trace.
func NewTraceScenario(name string, initial []*Spec, arrivals []ScenarioArrival) (*OpenScenario, error) {
	return scenario.NewTrace(name, initial, arrivals)
}

// RunClosed runs a closed scenario under a dynamic policy.
func RunClosed(cfg SimConfig, scn *ClosedScenario, pol DynamicPolicy) (*SimResult, error) {
	return sim.RunClosed(cfg, scn, pol)
}

// RunOpen runs an open scenario under a dynamic policy; same
// (scenario, seed, config) inputs reproduce identical results.
func RunOpen(cfg SimConfig, scn *OpenScenario, pol DynamicPolicy) (*OpenSimResult, error) {
	return sim.RunOpen(cfg, scn, pol)
}

// ---------------------------------------------------------------------
// Cluster layer (multi-machine placement).
// ---------------------------------------------------------------------

// ClusterConfig parameterizes a multi-machine cluster run: per-machine
// simulator configuration (the homogeneous Sim+Machines shorthand or a
// heterogeneous Fleet list), placement policy, the advancement
// worker-pool bound, the opt-in per-arrival assignment log
// (RecordAssignments) and striped sub-fleet sharding (Shards, for
// order-independent placements only).
type ClusterConfig = cluster.Config

// ClusterResult carries a cluster run's fleet-wide aggregates, the
// opt-in per-arrival placement record (ClusterConfig.RecordAssignments)
// and every machine's open-system result.
type ClusterResult = cluster.Result

// ClusterMachineResult is one machine's share of a cluster run.
type ClusterMachineResult = cluster.MachineResult

// PlacementPolicy decides which machine admits an arriving application.
type PlacementPolicy = cluster.Policy

// ShardablePlacement marks placements whose decisions are
// order-independent across machine subsets, making them eligible for
// ClusterConfig.Shards striping (round-robin and least-loaded qualify;
// the fairness-aware placement does not).
type ShardablePlacement = cluster.ShardablePlacement

// PlacementMachineState is one machine's placement-visible load.
type PlacementMachineState = cluster.MachineState

// NewRoundRobinPlacement cycles arrivals through the machines in order.
func NewRoundRobinPlacement() PlacementPolicy { return cluster.NewRoundRobin() }

// NewLeastLoadedPlacement admits on the machine with the fewest
// resident plus queued applications.
func NewLeastLoadedPlacement() PlacementPolicy { return cluster.NewLeastLoaded() }

// NewFairnessAwarePlacement scores candidate machines with the sharing
// model plus LFOC's light/streaming classification and admits where
// predicted unfairness is lowest.
func NewFairnessAwarePlacement(plat *Platform) PlacementPolicy {
	return cluster.NewFairnessAware(plat)
}

// NewPlacement constructs a placement policy by name ("rr", "least" or
// "fair").
func NewPlacement(name string, plat *Platform) (PlacementPolicy, error) {
	return cluster.NewPlacement(name, plat)
}

// RunCluster executes an open scenario over a fleet of machines, each
// running its own dynamic partitioning policy built by newPolicy. An
// N=1 cluster reproduces RunOpen bit-identically, fleet advancement
// parallelizes over ClusterConfig.Workers without changing any result,
// and ClusterConfig.Fleet makes the fleet heterogeneous.
func RunCluster(cfg ClusterConfig, scn *OpenScenario, newPolicy func(machine int) (DynamicPolicy, error)) (*ClusterResult, error) {
	return cluster.Run(cfg, scn, newPolicy)
}

// ParseMachineMix parses a heterogeneous fleet specification — comma-
// separated "<count>x<ways>way[<cores>c]" groups, e.g. "2x11way,2x7way"
// — into per-machine simulator configurations for ClusterConfig.Fleet,
// deriving each machine from the base configuration.
func ParseMachineMix(spec string, base SimConfig) ([]SimConfig, error) {
	return cluster.ParseMachineMix(spec, base)
}

// ---------------------------------------------------------------------
// Machine lifecycle (elastic fleets, fault injection).
// ---------------------------------------------------------------------

// ClusterLifecycle configures ClusterConfig.Lifecycle: scheduled
// join/drain/fail events, a seeded MTBF failure process, bounded retry
// with exponential backoff, migration-aware drain recovery and
// load-triggered autoscaling. Identical (trace, schedule, seeds) inputs
// reproduce identical runs at any worker count; a nil or event-free
// lifecycle leaves cluster runs byte-identical to a build without the
// layer.
type ClusterLifecycle = cluster.Lifecycle

// ClusterEvent is one scheduled machine lifecycle event.
type ClusterEvent = cluster.Event

// ClusterAutoscale configures load-triggered fleet scaling.
type ClusterAutoscale = cluster.Autoscale

// ClusterLifecycleSummary is the lifecycle layer's share of a cluster
// result (event counts, disruption accounting, availability series).
type ClusterLifecycleSummary = cluster.LifecycleSummary

// Lifecycle event kinds.
const (
	MachineJoin  = cluster.MachineJoin
	MachineDrain = cluster.MachineDrain
	MachineFail  = cluster.MachineFail
)

// MigrationPolicy decides whether an application displaced by a drain
// is live-migrated (progress preserved) or requeued.
type MigrationPolicy = cluster.MigrationPolicy

// NewCostAwareMigration returns the default migration policy: migrate
// when the resident's preserved progress exceeds the modeled cost,
// choosing the destination by predicted unfairness.
func NewCostAwareMigration(cost float64, plat *Platform) MigrationPolicy {
	return cluster.NewCostAwareMigration(cost, plat)
}

// ClusterPlacementError is the typed error a cluster run returns when a
// placement or migration policy chooses a machine outside its contract
// (index out of range, or a machine that is down); test with errors.As.
type ClusterPlacementError = cluster.PlacementError

// Crash safety: checkpoint/resume, cooperative cancellation and
// panic-isolated workers (see docs/checkpoint-resume.md).

// ClusterCheckpointConfig configures periodic checkpointing of a
// cluster run (ClusterConfig.Checkpoint): atomic, checksummed writes of
// the run's full coordinate.
type ClusterCheckpointConfig = cluster.CheckpointConfig

// ClusterCheckpoint is a decoded, checksum-verified checkpoint, ready
// for ClusterConfig.Resume.
type ClusterCheckpoint = cluster.Checkpoint

// ReadClusterCheckpoint loads and verifies a checkpoint file. Failures
// are typed: *ClusterCheckpointFormatError for a non-checkpoint file or
// an unsupported version, *ClusterCheckpointChecksumError for a payload
// that fails its checksum.
func ReadClusterCheckpoint(path string) (*ClusterCheckpoint, error) {
	return cluster.ReadCheckpoint(path)
}

// Typed checkpoint-file errors (match with errors.As).
type (
	ClusterCheckpointFormatError   = cluster.CheckpointFormatError
	ClusterCheckpointChecksumError = cluster.CheckpointChecksumError
)

// CancelFlag requests a cooperative pause of a run (ClusterConfig.Cancel
// or SimConfig.Cancel): safe to set from any goroutine; kernels check it
// at tick boundaries, the cluster layer at arrival boundaries. A
// canceled cluster run returns a partial result with Interrupted set
// and a nil error.
type CancelFlag = sim.CancelFlag

// ErrCanceled is the sentinel a canceled kernel-level run returns
// (errors.Is). Cluster runs absorb it into Result.Interrupted instead.
var ErrCanceled = sim.ErrCanceled

// ClusterRunPanicError is the typed error a cluster run returns when a
// machine's kernel panics (a buggy policy, for instance): the worker
// pool recovers the panic, winds down cleanly, and reports the machine
// index, recovered value and stack; test with errors.As.
type ClusterRunPanicError = cluster.RunPanicError

// SnapshotUnsupportedError is the typed error reported up-front when
// checkpointing is requested but a placement or partitioning policy
// does not support snapshots; test with errors.As.
type SnapshotUnsupportedError = sim.SnapshotUnsupportedError

// FleetEvent is the declarative (JSON/CLI) form of a lifecycle event.
type FleetEvent = workloads.FleetEvent

// ParseFleetEvents parses a compact lifecycle schedule, e.g.
// "drain:t=5,m=1;fail:t=7,m=0;join:t=9".
func ParseFleetEvents(s string) ([]FleetEvent, error) {
	return workloads.ParseFleetEvents(s)
}

// SplitArrivals partitions an arrival trace across machines by an
// explicit per-arrival assignment (such as ClusterResult.Assignments,
// recorded when ClusterConfig.RecordAssignments is set).
func SplitArrivals(arrivals []ScenarioArrival, assignment []int, machines int) ([][]ScenarioArrival, error) {
	return workloads.SplitArrivals(arrivals, assignment, machines)
}

// ---------------------------------------------------------------------
// Workloads and experiments.
// ---------------------------------------------------------------------

// ExperimentWorkload is one of the paper's 36 mixes (Fig. 5).
type ExperimentWorkload = workloads.Workload

// AllWorkloads returns S1..S21 and P1..P15.
func AllWorkloads() []ExperimentWorkload { return workloads.All() }

// GetWorkload looks a workload up by name.
func GetWorkload(name string) (ExperimentWorkload, error) { return workloads.Get(name) }

// RandomMix draws a random workload of the given size.
func RandomMix(seed int64, size int) ExperimentWorkload { return workloads.RandomMix(seed, size) }

// ExperimentConfig parameterizes the figure/table regeneration harness.
type ExperimentConfig = harness.Config

// DefaultExperimentConfig returns the standard (1/50 time-scaled)
// experiment configuration.
func DefaultExperimentConfig() ExperimentConfig { return harness.DefaultConfig() }

// ---------------------------------------------------------------------
// Declarative workload specs and arrival traces.
// ---------------------------------------------------------------------

// WorkloadSpec is a declarative open-system scenario: per-cohort
// application mixes, diurnal rate curves (piecewise or sinusoidal),
// optional MMPP calm/burst modulation and heavy-tailed job-size
// distributions, all loaded from a versioned YAML/JSON file. Its
// Generate/Scenario methods expand it into a concrete arrival trace as
// a pure seeded function of (spec, scale) — bit-identical across runs,
// processes and GOMAXPROCS. See docs/workload-spec.md for the file
// format.
type WorkloadSpec = workloads.Spec

// LoadWorkloadSpec reads, parses and validates a spec file (format by
// extension: .json, .yaml/.yml, anything else sniffed).
func LoadWorkloadSpec(path string) (*WorkloadSpec, error) { return workloads.LoadSpec(path) }

// ParseWorkloadSpec parses and validates spec bytes. Parsing is strict:
// unknown fields are a *WorkloadSpecParseError, semantic problems a
// *WorkloadSpecValidationError, and a schema-version mismatch a
// *WorkloadSpecVersionError (all match with errors.As).
func ParseWorkloadSpec(data []byte, ext string) (*WorkloadSpec, error) {
	return workloads.ParseSpec(data, ext)
}

// Typed workload-spec and trace errors.
type (
	// WorkloadSpecVersionError reports a spec or trace file written
	// under an unsupported schema version.
	WorkloadSpecVersionError = workloads.VersionError
	// WorkloadSpecValidationError reports a semantically invalid spec
	// field by its dotted path (e.g. "cohorts[1].rate.constant").
	WorkloadSpecValidationError = workloads.ValidationError
	// WorkloadSpecParseError reports malformed spec syntax or unknown
	// fields.
	WorkloadSpecParseError = workloads.ParseError
	// ArrivalTraceError reports a malformed or unrepresentable arrival
	// trace.
	ArrivalTraceError = workloads.TraceError
)

// ArrivalTrace is a recorded open-system arrival stream: the versioned
// on-disk form of a generated scenario. Record once, replay under
// different placements/policies/fleets — every variant faces the
// identical arrivals bit for bit.
type ArrivalTrace = workloads.Trace

// WriteArrivalTrace records a trace to a file; it fails with an
// *ArrivalTraceError if any arrival is not exactly representable (so a
// trace that writes cleanly is guaranteed to replay bit-identically).
func WriteArrivalTrace(path string, t *ArrivalTrace) error { return workloads.WriteTraceFile(path, t) }

// ReadArrivalTrace replays a trace from a file, rebuilding every
// arrival spec through the same scaling path generation uses.
func ReadArrivalTrace(path string) (*ArrivalTrace, error) { return workloads.ReadTraceFile(path) }

// ---------------------------------------------------------------------
// resctrl-style deployment interface.
// ---------------------------------------------------------------------

// Resctrl emulates the Linux resctrl filesystem over a CAT controller —
// the control surface a production LFOC daemon would use (resource
// groups, "L3:0=7ff" schemata lines, task files, llc_occupancy).
type Resctrl = resctrl.FS

// CATController is the raw CAT control plane (COS table + associations).
type CATController = cat.Controller

// WayMask is a CAT capacity bitmask (one bit per LLC way).
type WayMask = cat.WayMask

// TaskID identifies a task in the CAT/resctrl namespaces (the simulator
// and the plans use plain application indices for the same ids).
type TaskID = cat.TaskID

// NewCATController creates a CAT control plane for a platform.
func NewCATController(plat *Platform) (*CATController, error) {
	return cat.NewController(plat.Ways, plat.NumCOS, plat.MinCBMBits)
}

// MountResctrl mounts the emulated resctrl filesystem over a controller.
// occFn, if non-nil, backs the llc_occupancy monitoring files.
func MountResctrl(ctrl *CATController, cacheIDs []int, occFn func(task int) uint64) (*Resctrl, error) {
	var wrapped func(cat.TaskID) uint64
	if occFn != nil {
		wrapped = func(t cat.TaskID) uint64 { return occFn(int(t)) }
	}
	return resctrl.NewFS(ctrl, cacheIDs, wrapped)
}

// ApplyPlan enforces a clustering plan through the resctrl interface:
// one resource group per cluster with sequential disjoint masks (or
// Dunn-style overlapping masks when the plan says so).
func ApplyPlan(fs *Resctrl, p Plan, plat *Platform) error {
	masks, err := p.Masks(plat.Ways)
	if err != nil {
		return err
	}
	members := make([][]cat.TaskID, len(p.Clusters))
	for ci, c := range p.Clusters {
		for _, a := range c.Apps {
			members[ci] = append(members[ci], cat.TaskID(a))
		}
	}
	return fs.ApplyPlanMasks(masks, members)
}
