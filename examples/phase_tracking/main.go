// Phase tracking: reproduce the paper's Fig. 4 scenario — fotonik3d
// starts with a quiet light-sharing setup phase and then turns into a
// streaming aggressor. A policy that classifies it once at startup would
// leave it co-located with cache-sensitive programs; LFOC's phase-change
// heuristics detect the transition and resample.
//
// The program co-runs phased applications with a sensitive victim under
// LFOC and reports the classification history and the fairness outcome.
//
//	go run ./examples/phase_tracking
package main

import (
	"fmt"
	"log"

	lfoc "github.com/faircache/lfoc"
)

func main() {
	cfg := lfoc.DefaultExperimentConfig()
	cfg.Scale = 25 // longer runs so several phase transitions happen
	plat := lfoc.Skylake()

	// fotonik3d (light → streaming), xz (sensitive ↔ light loop) and two
	// steady programs as context.
	w, err := lfoc.GetWorkload("P1")
	if err != nil {
		log.Fatal(err)
	}
	specs := w.ScaledSpecs(cfg.Scale)

	fmt.Printf("workload %s: %v\n\n", w.Name, w.Benchmarks)

	pol, ctrl, err := cfg.NewDynamicPolicy("lfoc")
	if err != nil {
		log.Fatal(err)
	}
	res, err := lfoc.RunDynamic(cfg.SimConfig(), specs, pol)
	if err != nil {
		log.Fatal(err)
	}

	stock, err := lfoc.RunDynamic(cfg.SimConfig(), specs, lfoc.NewStockDynamic(plat.Ways))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("benchmark        final-class  resamples  slowdown(lfoc)  slowdown(stock)")
	for i, s := range specs {
		fmt.Printf("%-16s %-12s %9d %15.3f %16.3f\n",
			s.Name, ctrl.ClassOf(i), ctrl.Resamples(i), res.Slowdowns[i], stock.Slowdowns[i])
	}
	fmt.Printf("\nunfairness: lfoc=%.3f stock=%.3f\n", res.Summary.Unfairness, stock.Summary.Unfairness)
	fmt.Printf("partitioner activations: %d over %.1fs simulated\n", res.Repartitions, res.SimSeconds)

	// Count phase-triggered resampling across the workload: the paper's
	// lightweight answer to Fig. 4's problem.
	total := 0
	for i := range specs {
		total += ctrl.Resamples(i)
	}
	fmt.Printf("phase-change resampling episodes: %d\n", total)
	fmt.Println("final plan:", ctrl.Plan().Canonical())
}
