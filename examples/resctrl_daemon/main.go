// resctrl daemon: how a production deployment of LFOC would look as a
// userland daemon sitting on Linux's /sys/fs/resctrl instead of a kernel
// module. The program runs a workload in the simulator while enforcing
// every partitioning decision through the emulated resctrl filesystem —
// resource groups, "L3:..." schemata writes and tasks files — and prints
// the resulting filesystem state after each partitioner activation epoch.
//
//	go run ./examples/resctrl_daemon
package main

import (
	"fmt"
	"log"

	lfoc "github.com/faircache/lfoc"
)

func main() {
	plat := lfoc.Skylake()

	// Mount the emulated resctrl over a CAT controller.
	catc, err := lfoc.NewCATController(plat)
	if err != nil {
		log.Fatal(err)
	}
	fs, err := lfoc.MountResctrl(catc, []int{0}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Decide a plan with LFOC's algorithm from offline profiles (the
	// daemon's bootstrapping mode; online it would sample counters).
	names := []string{"xalancbmk06", "omnetpp06", "lbm06", "milc06", "povray06", "namd06"}
	sw := &lfoc.StaticWorkload{Plat: plat}
	var specs []*lfoc.Spec
	for _, n := range names {
		spec, err := lfoc.Benchmark(n)
		if err != nil {
			log.Fatal(err)
		}
		specs = append(specs, spec)
		ph := &spec.Phases[0]
		sw.Phases = append(sw.Phases, ph)
		sw.Tables = append(sw.Tables, lfoc.BuildProfile(ph, plat))
	}
	p, err := (lfoc.LFOCStaticPolicy{}).Decide(sw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("LFOC plan:", p.Canonical())

	// Enforce it through resctrl, exactly as a daemon would.
	if err := lfoc.ApplyPlan(fs, p, plat); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nemulated /sys/fs/resctrl state:")
	for _, g := range fs.Groups() {
		schemata, err := fs.ReadSchemata(g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s/schemata: %s\n", g, schemata)
		fmt.Printf("  %s/tasks:   ", g)
		for idx, n := range names {
			if fs.GroupOf(lfoc.TaskID(idx)) == g {
				fmt.Printf(" %s", n)
			}
		}
		fmt.Println()
	}

	// Verify the enforced configuration performs as the plan promised.
	cfg := lfoc.DefaultExperimentConfig()
	res, err := lfoc.RunStatic(cfg.SimConfig(), specs, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nenforced run: unfairness=%.3f STP=%.3f\n", res.Summary.Unfairness, res.Summary.STP)
}
