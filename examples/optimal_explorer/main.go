// Optimal explorer: use the PBBCache-style solver to study how the
// optimal-fairness solution changes shape as workloads grow — the §3
// analysis that motivated LFOC's design. For each workload size the
// program solves both the clustering and the strict-partitioning
// problems and shows (a) partitioning's growing unfairness penalty
// (Fig. 3) and (b) where the optimum puts streaming programs (Fig. 2's
// key observation).
//
//	go run ./examples/optimal_explorer
package main

import (
	"fmt"
	"log"

	lfoc "github.com/faircache/lfoc"
)

func main() {
	plat := lfoc.Skylake()
	solver := lfoc.NewSolver(plat)
	solver.NodeBudget = 200_000

	fmt.Println("apps  clustering-unf  partitioning-unf  penalty  streaming-ways")
	for n := 4; n <= plat.Ways; n++ {
		mix := lfoc.RandomMix(int64(40+n), n)
		var phases []*lfoc.PhaseSpec
		streaming := map[int]bool{}
		for i, b := range mix.Benchmarks {
			spec, err := lfoc.Benchmark(b)
			if err != nil {
				log.Fatal(err)
			}
			phases = append(phases, &spec.Phases[0])
			if spec.Class == lfoc.AppStreaming {
				streaming[i] = true
			}
		}

		clu, err := solver.OptimalClustering(phases, lfoc.OptimizeFairness)
		if err != nil {
			log.Fatal(err)
		}
		part, err := solver.OptimalPartitioning(phases, lfoc.OptimizeFairness)
		if err != nil {
			log.Fatal(err)
		}

		// How many ways do clusters containing streaming apps hold in
		// the optimal clustering? (§3: "no greater than 2 in any
		// workload".)
		streamWays := 0
		for _, c := range clu.Plan.Clusters {
			for _, a := range c.Apps {
				if streaming[a] {
					streamWays += c.Ways
					break
				}
			}
		}

		fmt.Printf("%4d %15.3f %17.3f %8.3f %15d\n",
			n, clu.Unfairness, part.Unfairness, part.Unfairness/clu.Unfairness, streamWays)
	}

	// Show one full optimal solution in detail.
	fmt.Println("\ndetailed optimum for a 10-app mix:")
	mix := lfoc.RandomMix(7, 10)
	var phases []*lfoc.PhaseSpec
	for _, b := range mix.Benchmarks {
		spec, _ := lfoc.Benchmark(b)
		phases = append(phases, &spec.Phases[0])
	}
	sol, err := solver.OptimalClustering(phases, lfoc.OptimizeFairness)
	if err != nil {
		log.Fatal(err)
	}
	for ci, c := range sol.Plan.Clusters {
		fmt.Printf("  cluster %d (%d ways):", ci, c.Ways)
		for _, a := range c.Apps {
			fmt.Printf(" %s(sd=%.2f)", mix.Benchmarks[a], sol.Slowdowns[a])
		}
		fmt.Println()
	}
	fmt.Printf("  unfairness=%.3f STP=%.3f nodes=%d exact=%v\n",
		sol.Unfairness, sol.STP, sol.Nodes, sol.Exact)
}
