// Fairness audit: the scenario from the paper's introduction — a
// cloud-style operator runs a consolidated multiprogram workload and
// wants to know how much unfairness the shared LLC introduces (wrong
// billings, unpredictable completion times) and which clustering policy
// fixes it.
//
// The program decides a plan with every static policy, estimates per-app
// slowdowns with the contention model, and then verifies the two leading
// plans with full co-run simulations.
//
//	go run ./examples/fairness_audit [workload]
package main

import (
	"fmt"
	"log"
	"os"

	lfoc "github.com/faircache/lfoc"
)

func main() {
	name := "S8"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, err := lfoc.GetWorkload(name)
	if err != nil {
		log.Fatal(err)
	}
	plat := lfoc.Skylake()

	// Offline profiles for every application (what the paper gathers
	// with performance counters before the static-mode experiments).
	sw := &lfoc.StaticWorkload{Plat: plat}
	for _, b := range w.Benchmarks {
		spec, err := lfoc.Benchmark(b)
		if err != nil {
			log.Fatal(err)
		}
		ph := &spec.Phases[0]
		sw.Phases = append(sw.Phases, ph)
		sw.Tables = append(sw.Tables, lfoc.BuildProfile(ph, plat))
	}

	model := lfoc.NewContentionModel(plat)
	policies := []lfoc.StaticPolicy{
		lfoc.StockPolicy{},
		lfoc.DunnPolicy{},
		lfoc.KPartPolicy{},
		lfoc.LFOCStaticPolicy{},
	}

	fmt.Printf("fairness audit of workload %s (%d apps): %v\n\n", w.Name, w.Size, w.Benchmarks)
	fmt.Printf("%-12s %10s %8s   plan\n", "policy", "unfairness", "STP")
	type outcome struct {
		name string
		plan lfoc.Plan
		unf  float64
	}
	var outcomes []outcome
	for _, pol := range policies {
		p, err := pol.Decide(sw)
		if err != nil {
			log.Fatal(pol.Name(), ": ", err)
		}
		slow, err := lfoc.EstimateSlowdowns(model, sw.Phases, p)
		if err != nil {
			log.Fatal(pol.Name(), ": ", err)
		}
		unf, _ := lfoc.Unfairness(slow)
		stp, _ := lfoc.STP(slow)
		fmt.Printf("%-12s %10.3f %8.3f   %s\n", pol.Name(), unf, stp, p.Canonical())
		outcomes = append(outcomes, outcome{pol.Name(), p, unf})
	}

	// Verify the baseline and the LFOC plan with full simulations
	// (restart methodology, completion-time-based slowdowns).
	fmt.Println("\nverification runs (full simulation):")
	cfg := lfoc.DefaultExperimentConfig()
	for _, oc := range []outcome{outcomes[0], outcomes[len(outcomes)-1]} {
		res, err := lfoc.RunStatic(cfg.SimConfig(), w.ScaledSpecs(cfg.Scale), oc.plan)
		if err != nil {
			log.Fatal(oc.name, ": ", err)
		}
		fmt.Printf("  %-12s unfairness=%.3f STP=%.3f (model estimate was %.3f)\n",
			oc.name, res.Summary.Unfairness, res.Summary.STP, oc.unf)
	}
}
