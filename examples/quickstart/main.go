// Quickstart: co-run a small mix under stock Linux and under LFOC and
// compare fairness — the library's 60-second tour.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	lfoc "github.com/faircache/lfoc"
)

func main() {
	// The paper's platform: Xeon Gold 6138, 11-way 27.5 MB LLC with CAT.
	plat := lfoc.Skylake()

	// A 4-application mix: one highly cache-sensitive program, one
	// moderately sensitive, and two streaming aggressors.
	var specs []*lfoc.Spec
	for _, name := range []string{"xalancbmk06", "soplex06", "lbm06", "libquantum06"} {
		s, err := lfoc.Benchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		specs = append(specs, s)
	}

	// Experiment configuration: 1/50 time scale (run 3 G instructions
	// per run instead of 150 G, with all monitoring cadences scaled
	// alike).
	cfg := lfoc.DefaultExperimentConfig()
	simCfg := cfg.SimConfig()

	// Baseline: no partitioning.
	stock, err := lfoc.RunDynamic(simCfg, specs, lfoc.NewStockDynamic(plat.Ways))
	if err != nil {
		log.Fatal(err)
	}

	// LFOC: online classification + fairness-oriented clustering.
	pol, ctrl, err := cfg.NewDynamicPolicy("lfoc")
	if err != nil {
		log.Fatal(err)
	}
	res, err := lfoc.RunDynamic(simCfg, specs, pol)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("benchmark        stock-slowdown   lfoc-slowdown   lfoc-class")
	for i, s := range specs {
		fmt.Printf("%-16s %14.3f %15.3f   %s\n",
			s.Name, stock.Slowdowns[i], res.Slowdowns[i], ctrl.ClassOf(i))
	}
	fmt.Printf("\nunfairness: stock=%.3f  lfoc=%.3f  (%.1f%% reduction)\n",
		stock.Summary.Unfairness, res.Summary.Unfairness,
		(1-res.Summary.Unfairness/stock.Summary.Unfairness)*100)
	fmt.Printf("throughput: stock=%.3f  lfoc=%.3f\n", stock.Summary.STP, res.Summary.STP)
	fmt.Println("final LFOC plan:", ctrl.Plan().Canonical())
}
