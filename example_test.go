package lfoc_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"

	lfoc "github.com/faircache/lfoc"
)

// ExampleParseWorkloadSpec builds an experiment entirely from a
// declarative spec: a diurnal web cohort with bursts and heavy-tailed
// job sizes, expanded into a concrete arrival trace and run through the
// open-system simulator. Generation is a pure function of the spec, so
// this example's output is reproducible bit for bit.
func ExampleParseWorkloadSpec() {
	const specYAML = `
spec_version: 1
name: example
seed: 42
duration_seconds: 6
day_seconds: 3
cohorts:
  - name: web
    mix:
      workload: S1
    rate:
      sinusoid:
        base: 2
        amplitude: 1.5
    burst:
      factor: 3
      mean_calm_seconds: 1
      mean_burst_seconds: 0.3
    size:
      dist: pareto
      alpha: 2
      max_factor: 6
`
	spec, err := lfoc.ParseWorkloadSpec([]byte(specYAML), ".yaml")
	if err != nil {
		panic(err)
	}

	cfg := lfoc.DefaultExperimentConfig()
	scn, err := spec.Scenario(cfg.Scale)
	if err != nil {
		panic(err)
	}

	pol, _, err := cfg.NewDynamicPolicy("lfoc")
	if err != nil {
		panic(err)
	}
	res, err := lfoc.RunOpen(cfg.SimConfig(), scn, pol)
	if err != nil {
		panic(err)
	}
	fmt.Printf("scenario %s: %d arrivals, %d departed\n", res.Scenario, len(res.Apps), res.Departed)
	// Output:
	// scenario example: 16 arrivals, 16 departed
}

// ExampleWriteArrivalTrace records a generated arrival stream and
// replays it: the replayed arrivals are reflect.DeepEqual to the
// recorded ones, which is what makes record-once/replay-everywhere
// comparisons methodologically sound.
func ExampleWriteArrivalTrace() {
	spec, err := lfoc.LoadWorkloadSpec("examples/specs/diurnal-bursty.yaml")
	if err != nil {
		panic(err)
	}
	cfg := lfoc.DefaultExperimentConfig()
	arrivals, err := spec.Generate(cfg.Scale)
	if err != nil {
		panic(err)
	}

	dir, err := os.MkdirTemp("", "lfoc-trace")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "run.trace")

	trace := &lfoc.ArrivalTrace{Name: spec.Name, Scale: cfg.Scale, Arrivals: arrivals}
	if err := lfoc.WriteArrivalTrace(path, trace); err != nil {
		panic(err)
	}
	replayed, err := lfoc.ReadArrivalTrace(path)
	if err != nil {
		panic(err)
	}
	fmt.Println("arrivals:", len(replayed.Arrivals))
	fmt.Println("bit-identical replay:", reflect.DeepEqual(replayed.Arrivals, arrivals))
	// Output:
	// arrivals: 31
	// bit-identical replay: true
}
