package lfoc_test

import (
	"fmt"
	"testing"

	lfoc "github.com/faircache/lfoc"
)

func TestPublicAPISurface(t *testing.T) {
	plat := lfoc.Skylake()
	if plat.Ways != 11 || plat.LLCBytes() != 28_835_840 {
		t.Errorf("platform: %d ways, %d bytes", plat.Ways, plat.LLCBytes())
	}
	if got := len(lfoc.Benchmarks()); got != 34 {
		t.Errorf("catalog size %d", got)
	}
	if len(lfoc.BenchmarksByClass(lfoc.AppStreaming)) < 5 {
		t.Error("streaming catalog too small")
	}
	if len(lfoc.AllWorkloads()) != 36 {
		t.Error("workload count wrong")
	}
	if _, err := lfoc.Benchmark("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := lfoc.GetWorkload("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestPublicControllerFlow(t *testing.T) {
	plat := lfoc.Skylake()
	params := lfoc.DefaultParams(plat.Ways)
	ctrl, err := lfoc.NewController(params, plat.WayBytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.AddApp(0); err != nil {
		t.Fatal(err)
	}
	if ctrl.ClassOf(0) != lfoc.ClassUnknown {
		t.Error("fresh app should be unknown")
	}
}

func TestPublicEstimateFlow(t *testing.T) {
	plat := lfoc.Skylake()
	model := lfoc.NewContentionModel(plat)
	var phases []*lfoc.PhaseSpec
	for _, n := range []string{"xalancbmk06", "lbm06"} {
		s, err := lfoc.Benchmark(n)
		if err != nil {
			t.Fatal(err)
		}
		phases = append(phases, &s.Phases[0])
	}
	p := lfoc.Plan{Clusters: []lfoc.Cluster{
		{Apps: []int{0}, Ways: 10},
		{Apps: []int{1}, Ways: 1},
	}}
	sd, err := lfoc.EstimateSlowdowns(model, phases, p)
	if err != nil {
		t.Fatal(err)
	}
	u, err := lfoc.Unfairness(sd)
	if err != nil || u < 1 {
		t.Errorf("unfairness = %v, %v", u, err)
	}
	s, err := lfoc.STP(sd)
	if err != nil || s <= 0 || s > 2 {
		t.Errorf("STP = %v, %v", s, err)
	}
}

func TestPublicSolverFlow(t *testing.T) {
	plat := lfoc.Skylake()
	solver := lfoc.NewSolver(plat)
	var phases []*lfoc.PhaseSpec
	for _, n := range []string{"xalancbmk06", "lbm06", "povray06"} {
		s, _ := lfoc.Benchmark(n)
		phases = append(phases, &s.Phases[0])
	}
	sol, err := solver.OptimalClustering(phases, lfoc.OptimizeFairness)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Exact || sol.Unfairness < 1 {
		t.Errorf("solution: %+v", sol)
	}
}

// ExampleEstimateSlowdowns demonstrates the offline estimation path: how
// much does isolating a streaming aggressor help a sensitive program?
func ExampleEstimateSlowdowns() {
	plat := lfoc.Skylake()
	model := lfoc.NewContentionModel(plat)

	xalan, _ := lfoc.Benchmark("xalancbmk06")
	lbm, _ := lfoc.Benchmark("lbm06")
	phases := []*lfoc.PhaseSpec{&xalan.Phases[0], &lbm.Phases[0]}

	shared := lfoc.Plan{Clusters: []lfoc.Cluster{{Apps: []int{0, 1}, Ways: 11}}}
	isolated := lfoc.Plan{Clusters: []lfoc.Cluster{
		{Apps: []int{0}, Ways: 10},
		{Apps: []int{1}, Ways: 1},
	}}

	for _, p := range []lfoc.Plan{shared, isolated} {
		sd, _ := lfoc.EstimateSlowdowns(model, phases, p)
		u, _ := lfoc.Unfairness(sd)
		fmt.Printf("clusters=%d unfairness=%.2f\n", len(p.Clusters), u)
	}
	// Output:
	// clusters=1 unfairness=1.68
	// clusters=2 unfairness=1.02
}

// ExampleDefaultParams shows the paper's LFOC configuration.
func ExampleDefaultParams() {
	p := lfoc.DefaultParams(11)
	fmt.Println(p.MaxStreamingWay, p.GapsPerStreaming, p.WarmupIntervals)
	// Output: 5 3 3
}

func TestPublicWrappersCoverage(t *testing.T) {
	if lfoc.SmallPlatform(4, 4).Ways != 4 {
		t.Error("SmallPlatform wrong")
	}
	if lfoc.RandomMix(3, 6).Size != 6 {
		t.Error("RandomMix wrong")
	}
	w, err := lfoc.GetWorkload("S2")
	if err != nil || w.Name != "S2" {
		t.Error("GetWorkload wrong")
	}
	spec, err := lfoc.Benchmark("soplex06")
	if err != nil {
		t.Fatal(err)
	}
	tbl := lfoc.BuildProfile(&spec.Phases[0], lfoc.Skylake())
	if tbl.Ways != 11 {
		t.Error("BuildProfile wrong")
	}
	d := lfoc.NewDunnDynamic(11)
	if err := d.AddApp(0); err != nil {
		t.Fatal(err)
	}
	cfg := lfoc.DefaultExperimentConfig()
	if _, _, err := cfg.NewDynamicPolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
	for _, name := range []string{"stock", "dunn", "lfoc"} {
		if pol, _, err := cfg.NewDynamicPolicy(name); err != nil || pol == nil {
			t.Errorf("policy %s: %v", name, err)
		}
	}
}

func TestPublicResctrlFlow(t *testing.T) {
	plat := lfoc.Skylake()
	catc, err := lfoc.NewCATController(plat)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := lfoc.MountResctrl(catc, []int{0}, func(task int) uint64 { return 64 })
	if err != nil {
		t.Fatal(err)
	}
	p := lfoc.Plan{Clusters: []lfoc.Cluster{
		{Apps: []int{0, 1}, Ways: 1},
		{Apps: []int{2}, Ways: 10},
	}}
	if err := lfoc.ApplyPlan(fs, p, plat); err != nil {
		t.Fatal(err)
	}
	if fs.GroupOf(lfoc.TaskID(2)) != "cluster1" {
		t.Error("task not placed")
	}
	occ, err := fs.LLCOccupancy("cluster0")
	if err != nil || occ != 128 {
		t.Errorf("occupancy = %d, %v", occ, err)
	}
	// Invalid plan propagates an error.
	bad := lfoc.Plan{Clusters: []lfoc.Cluster{{Apps: []int{0}, Ways: 99}}}
	if err := lfoc.ApplyPlan(fs, bad, plat); err == nil {
		t.Error("invalid plan accepted")
	}
}
