package main_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildVet compiles the lfoc-vet binary once per test run.
func buildVet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "lfoc-vet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building lfoc-vet: %v\n%s", err, out)
	}
	return bin
}

// writeModule materialises a synthetic module whose layout mirrors the
// repo's (internal/cluster, internal/sim), so the scoped analyzers
// engage exactly as they do on the real tree.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const goMod = "module example.com/violating\n\ngo 1.23\n"

// violatingCluster plants one instance of each invariant violation the
// acceptance criteria name: an unsorted order-sensitive map range and a
// global-rand draw in internal/cluster, plus a wall-clock read — and a
// correctly waived site that must NOT be reported.
const violatingCluster = `package cluster

import (
	"math/rand"
	"time"
)

var sink float64

func Bad(m map[string]float64) {
	for _, v := range m {
		sink += v
	}
	sink += rand.Float64()
	sink += float64(time.Now().Unix())
}

func Waived(m map[string]float64) {
	//lfoc:ok maprange: synthetic fixture; the sum feeds an assertion that ignores order
	for _, v := range m {
		_ = v
	}
}
`

const violatingKernel = `//lfoc:floatstrict
package sim

// Hot is annotated but allocates.
//
//lfoc:hotpath
func Hot(n int) []int {
	return make([]int, n)
}

func Carry(a, b, c float64) float64 {
	return a*b + c
}
`

func runVet(t *testing.T, bin, dir string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running lfoc-vet: %v\n%s", err, out)
	}
	return string(out), ee.ExitCode()
}

func TestVetFlagsSyntheticViolations(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, map[string]string{
		"go.mod":                      goMod,
		"internal/cluster/cluster.go": violatingCluster,
		"internal/sim/kernel.go":      violatingKernel,
	})

	out, code := runVet(t, bin, dir, "./...")
	if code != 1 {
		t.Fatalf("want exit 1 on findings, got %d\n%s", code, out)
	}
	for _, want := range []string{
		"nondeterministically ordered",
		"math/rand.Float64 draws from process-global state",
		"time.Now in a simulation package",
		"unpinned float multiply feeding +",
		"make allocates in //lfoc:hotpath function Hot",
		"[maprange]", "[seededrand]", "[floatpin]", "[hotpathalloc]",
		"cluster.go:11:2:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Waived") || strings.Contains(out, "cluster.go:20") {
		t.Errorf("waived site was reported:\n%s", out)
	}
}

func TestVetJSONOutput(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, map[string]string{
		"go.mod":                      goMod,
		"internal/cluster/cluster.go": violatingCluster,
	})

	out, code := runVet(t, bin, dir, "-json", "./...")
	if code != 1 {
		t.Fatalf("want exit 1, got %d\n%s", code, out)
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out)
	}
	if len(diags) != 3 {
		t.Fatalf("want 3 findings (maprange, seededrand rand, seededrand time), got %d:\n%s", len(diags), out)
	}
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
		if d.File == "" || d.Line == 0 || d.Col == 0 || d.Message == "" {
			t.Errorf("incomplete JSON diagnostic: %+v", d)
		}
	}
	if byAnalyzer["maprange"] != 1 || byAnalyzer["seededrand"] != 2 {
		t.Errorf("unexpected analyzer mix: %v", byAnalyzer)
	}
}

func TestVetCleanTreeExitsZero(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"internal/cluster/clean.go": `package cluster

func Sum(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}
`,
	})
	out, code := runVet(t, bin, dir, "./...")
	if code != 0 || strings.TrimSpace(out) != "" {
		t.Fatalf("want silent exit 0 on clean tree, got %d:\n%s", code, out)
	}
}

func TestVetRejectsRottenWaivers(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"internal/cluster/waivers.go": `package cluster

//lfoc:ok maprange
func MissingReason() {}

//lfoc:ok typoanalyzer: reasons galore
func UnknownAnalyzer() {}

//lfoc:ok seededrand: nothing here draws randomness at all
func Unused() {}
`,
	})
	out, code := runVet(t, bin, dir, "./...")
	if code != 1 {
		t.Fatalf("want exit 1 on waiver-hygiene findings, got %d\n%s", code, out)
	}
	for _, want := range []string{
		"has no justification",
		`unknown analyzer "typoanalyzer"`,
		"unused //lfoc:ok waiver for seededrand",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestVetUnknownAnalyzerIsUsageError(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, map[string]string{"go.mod": goMod, "p.go": "package p\n"})
	out, code := runVet(t, bin, dir, "-run", "nosuch", "./...")
	if code != 2 || !strings.Contains(out, "unknown analyzer") {
		t.Fatalf("want exit 2 + message for unknown -run analyzer, got %d:\n%s", code, out)
	}
}
