// Command lfoc-vet runs the project's determinism and hot-path
// analyzers (internal/analysis) over Go packages and reports findings
// with file:line:col positions.
//
// Usage:
//
//	lfoc-vet [-run analyzers] [-json] [-list] [packages]
//
// Packages default to ./... . Exit status is 0 when the tree is clean,
// 1 when there are findings, 2 on usage or load errors — so CI can
// gate on it directly. Findings are waivable in source with
// //lfoc:ok <analyzer>: <reason>; see docs/static-analysis.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/faircache/lfoc/internal/analysis"
	_ "github.com/faircache/lfoc/internal/analysis/all"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the -json wire shape, kept flat and stable for
// future tooling (editor integrations, fix bots).
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("lfoc-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	runList := fs.String("run", "", "comma-separated analyzer subset to run (default: all)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: lfoc-vet [-run analyzers] [-json] [-list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	known := analysis.KnownAnalyzers(analyzers)
	if *runList != "" {
		var sel []*analysis.Analyzer
		for _, name := range strings.Split(*runList, ",") {
			name = strings.TrimSpace(name)
			a := analysis.Lookup(name)
			if a == nil {
				fmt.Fprintf(stderr, "lfoc-vet: unknown analyzer %q (see lfoc-vet -list)\n", name)
				return 2
			}
			sel = append(sel, a)
		}
		analyzers = sel
	}

	patterns := fs.Args()
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "lfoc-vet: %v\n", err)
		return 2
	}
	diags, err := analysis.Vet(pkgs, analyzers, known)
	if err != nil {
		fmt.Fprintf(stderr, "lfoc-vet: %v\n", err)
		return 2
	}

	if *jsonOut {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "lfoc-vet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "lfoc-vet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
