// Command benchdiff is the CI perf-regression gate: it compares freshly
// generated JSON baselines (lfoc-bench -json / -sim-json) against the
// committed references and fails — exits non-zero — when a partitioning
// algorithm or the simulator kernel got meaningfully slower or started
// allocating more.
//
// Usage:
//
//	benchdiff -baseline BENCH_table2.json -current BENCH_new.json
//	benchdiff -sim-baseline BENCH_sim.json -sim-current BENCH_sim_new.json
//
// Both sections may run in one invocation; each needs its -current /
// -sim-current file. The Table 2 gates:
//
//   - Time: the median over workload sizes of the current/baseline
//     solve-time ratio must stay within -max-time-ratio (default 1.25,
//     i.e. a >25% median regression fails). The median over the eight
//     sizes absorbs single-row scheduler noise; the threshold absorbs
//     runner-to-runner variance.
//   - Allocations: allocs per invocation must not regress at all (they
//     are deterministic counts, so any growth is a real code change);
//     -alloc-slack (default 0.5 allocs/op) only absorbs background
//     runtime allocations smeared across the timing loop.
//
// To refresh the committed baseline intentionally (after an accepted
// perf change), regenerate it with the same iteration count CI uses and
// commit the result:
//
//	go run ./cmd/lfoc-bench -table 2 -iters 50 -json BENCH_table2.json
//
// The sim section applies the same two gates to the simulator-throughput
// rows (closed batch, open churn, 4-machine cluster): the median
// ticks/sec ratio across rows must not regress more than
// -max-time-ratio, and allocs per run must not grow beyond
// -sim-alloc-slack (a larger absolute slack than Table 2's, since a
// whole simulation makes thousands of allocations and the runtime smears
// background ones across the timing loop). Refresh with:
//
//	go run ./cmd/lfoc-bench -sim -sim-iters 5 -sim-json BENCH_sim.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/faircache/lfoc/internal/harness"
)

// baselineFile mirrors the lfoc-bench -json schema (the fields the gate
// reads; unknown fields are ignored).
type baselineFile struct {
	GeneratedAt  string              `json:"generated_at"`
	GoVersion    string              `json:"go_version"`
	Scale        uint64              `json:"scale"`
	ItersPerSize int                 `json:"iters_per_size"`
	Rows         []harness.Table2Row `json:"rows"`
}

func load(path string) (baselineFile, error) {
	var b baselineFile
	buf, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(buf, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Rows) == 0 {
		return b, fmt.Errorf("%s: no rows", path)
	}
	return b, nil
}

// simFile mirrors the lfoc-bench -sim-json schema.
type simFile struct {
	GeneratedAt string                `json:"generated_at"`
	GoVersion   string                `json:"go_version"`
	Scale       uint64                `json:"scale"`
	ItersPerRow int                   `json:"iters_per_row"`
	Rows        []harness.SimBenchRow `json:"rows"`
}

func loadSim(path string) (simFile, error) {
	var b simFile
	buf, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(buf, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Rows) == 0 {
		return b, fmt.Errorf("%s: no rows", path)
	}
	return b, nil
}

// minorVersion truncates a runtime.Version string to major.minor
// ("go1.24.5" → "go1.24"), the granularity at which alloc counts are
// comparable.
func minorVersion(v string) string {
	dots := 0
	for i, c := range v {
		if c == '.' {
			dots++
			if dots == 2 {
				return v[:i]
			}
		}
	}
	return v
}

func median(v []float64) float64 {
	sort.Float64s(v)
	n := len(v)
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}

func main() {
	var (
		basePath      = flag.String("baseline", "BENCH_table2.json", "committed Table 2 reference baseline")
		currPath      = flag.String("current", "", "freshly generated Table 2 baseline to check")
		timeRatio     = flag.Float64("max-time-ratio", 1.25, "fail when a median time/throughput ratio exceeds this")
		allocSlack    = flag.Float64("alloc-slack", 0.5, "Table 2 allocs/op tolerance for runtime background noise")
		simBasePath   = flag.String("sim-baseline", "BENCH_sim.json", "committed sim-throughput reference baseline")
		simCurrPath   = flag.String("sim-current", "", "freshly generated sim-throughput baseline to check")
		simAllocSlack = flag.Float64("sim-alloc-slack", 16, "sim allocs/run tolerance for runtime background noise")
	)
	flag.Parse()
	if flag.NArg() > 0 || (*currPath == "" && *simCurrPath == "") {
		fmt.Fprintln(os.Stderr, "benchdiff: need -current and/or -sim-current")
		flag.Usage()
		os.Exit(2)
	}

	failures := 0
	if *currPath != "" {
		failures += diffTable2(*basePath, *currPath, *timeRatio, *allocSlack)
	}
	if *simCurrPath != "" {
		failures += diffSim(*simBasePath, *simCurrPath, *timeRatio, *simAllocSlack)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("benchdiff: no perf regression")
}

// diffTable2 runs the Table 2 gates and returns the failure count.
func diffTable2(basePath, currPath string, timeRatio, allocSlack float64) int {
	base, err := load(basePath)
	exitOn(err)
	curr, err := load(currPath)
	exitOn(err)

	// Alloc counts are deterministic per Go release but can shift
	// between releases; comparing across major.minor versions would gate
	// on the toolchain, not the code.
	sameGo := minorVersion(base.GoVersion) == minorVersion(curr.GoVersion)
	if !sameGo {
		fmt.Fprintf(os.Stderr, "benchdiff: WARNING baseline is %s but current is %s; skipping the allocs/op gate (refresh the baseline on the CI Go version)\n",
			base.GoVersion, curr.GoVersion)
	}

	baseRows := map[int]harness.Table2Row{}
	for _, r := range base.Rows {
		baseRows[r.Apps] = r
	}
	currApps := map[int]bool{}
	for _, r := range curr.Rows {
		currApps[r.Apps] = true
	}

	fmt.Printf("benchdiff: %s (go %s, iters %d) vs %s (go %s, iters %d)\n",
		basePath, base.GoVersion, base.ItersPerSize, currPath, curr.GoVersion, curr.ItersPerSize)
	fmt.Printf("%5s %12s %12s %7s %12s %12s %7s %10s %10s\n",
		"#apps", "lfoc-base", "lfoc-curr", "ratio", "kpart-base", "kpart-curr", "ratio", "allocs-b", "allocs-c")

	var lfocRatios, kpartRatios []float64
	failures := 0
	for _, c := range curr.Rows {
		b, ok := baseRows[c.Apps]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchdiff: no baseline row for %d apps\n", c.Apps)
			failures++
			continue
		}
		lr, kr := c.LFOCms/b.LFOCms, c.KPartms/b.KPartms
		lfocRatios = append(lfocRatios, lr)
		kpartRatios = append(kpartRatios, kr)
		fmt.Printf("%5d %10.5fms %10.5fms %7.2f %10.5fms %10.5fms %7.2f %10.1f %10.1f\n",
			c.Apps, b.LFOCms, c.LFOCms, lr, b.KPartms, c.KPartms, kr, b.LFOCAllocs, c.LFOCAllocs)
		if sameGo && c.LFOCAllocs > b.LFOCAllocs+allocSlack {
			fmt.Fprintf(os.Stderr, "benchdiff: FAIL %d apps: LFOC allocs/op %.1f > baseline %.1f\n",
				c.Apps, c.LFOCAllocs, b.LFOCAllocs)
			failures++
		}
		if sameGo && c.KPartAllocs > b.KPartAllocs+allocSlack {
			fmt.Fprintf(os.Stderr, "benchdiff: FAIL %d apps: KPart allocs/op %.1f > baseline %.1f\n",
				c.Apps, c.KPartAllocs, b.KPartAllocs)
			failures++
		}
	}
	// Symmetric coverage: a baseline size the current run never measured
	// is a gap in the gate, not a pass.
	for _, b := range base.Rows {
		if !currApps[b.Apps] {
			fmt.Fprintf(os.Stderr, "benchdiff: FAIL baseline row for %d apps missing from current results\n", b.Apps)
			failures++
		}
	}
	if len(lfocRatios) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no comparable rows")
		os.Exit(1)
	}

	lfocMed, kpartMed := median(lfocRatios), median(kpartRatios)
	fmt.Printf("median solve-time ratio: LFOC %.3f, KPart %.3f (gate %.2f)\n", lfocMed, kpartMed, timeRatio)
	if lfocMed > timeRatio {
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL median LFOC solve time regressed %.0f%% (> %.0f%%)\n",
			(lfocMed-1)*100, (timeRatio-1)*100)
		failures++
	}
	if kpartMed > timeRatio {
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL median KPart solve time regressed %.0f%% (> %.0f%%)\n",
			(kpartMed-1)*100, (timeRatio-1)*100)
		failures++
	}
	return failures
}

// diffSim runs the simulator-throughput gates and returns the failure
// count: the median over rows of the baseline/current ticks-per-second
// ratio must stay within timeRatio (throughput is gated rather than
// wall-clock per run, so a config change that alters how long a
// scenario simulates cannot masquerade as a speedup), and allocations
// per run must not grow beyond allocSlack.
func diffSim(basePath, currPath string, timeRatio, allocSlack float64) int {
	base, err := loadSim(basePath)
	exitOn(err)
	curr, err := loadSim(currPath)
	exitOn(err)

	sameGo := minorVersion(base.GoVersion) == minorVersion(curr.GoVersion)
	if !sameGo {
		fmt.Fprintf(os.Stderr, "benchdiff: WARNING sim baseline is %s but current is %s; skipping the allocs/run gate (refresh the baseline on the CI Go version)\n",
			base.GoVersion, curr.GoVersion)
	}

	baseRows := map[string]harness.SimBenchRow{}
	for _, r := range base.Rows {
		baseRows[r.Name] = r
	}
	currNames := map[string]bool{}
	for _, r := range curr.Rows {
		currNames[r.Name] = true
	}

	fmt.Printf("benchdiff: %s (go %s, iters %d) vs %s (go %s, iters %d)\n",
		basePath, base.GoVersion, base.ItersPerRow, currPath, curr.GoVersion, curr.ItersPerRow)
	fmt.Printf("%-14s %14s %14s %7s %12s %12s\n",
		"scenario", "base tick/s", "curr tick/s", "ratio", "allocs-b", "allocs-c")

	var ratios []float64
	failures := 0
	for _, c := range curr.Rows {
		b, ok := baseRows[c.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchdiff: no sim baseline row %q\n", c.Name)
			failures++
			continue
		}
		// Throughput ratio: >1 means the current build is slower.
		r := b.TicksPerSec / c.TicksPerSec
		ratios = append(ratios, r)
		fmt.Printf("%-14s %14.0f %14.0f %7.2f %12.0f %12.0f\n",
			c.Name, b.TicksPerSec, c.TicksPerSec, r, b.AllocsPerRun, c.AllocsPerRun)
		if sameGo && c.AllocsPerRun > b.AllocsPerRun+allocSlack {
			fmt.Fprintf(os.Stderr, "benchdiff: FAIL sim %s: allocs/run %.0f > baseline %.0f\n",
				c.Name, c.AllocsPerRun, b.AllocsPerRun)
			failures++
		}
	}
	for _, b := range base.Rows {
		if !currNames[b.Name] {
			fmt.Fprintf(os.Stderr, "benchdiff: FAIL sim baseline row %q missing from current results\n", b.Name)
			failures++
		}
	}
	if len(ratios) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no comparable sim rows")
		os.Exit(1)
	}
	med := median(ratios)
	fmt.Printf("median sim-throughput ratio: %.3f (gate %.2f)\n", med, timeRatio)
	if med > timeRatio {
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL median sim throughput regressed %.0f%% (> %.0f%%)\n",
			(med-1)*100, (timeRatio-1)*100)
		failures++
	}
	return failures
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}
