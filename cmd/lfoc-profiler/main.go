// Command lfoc-profiler dumps the offline per-way profile of a benchmark
// — the tables the paper gathers with performance counters on the real
// machine (slowdown, IPC, LLCMPKC, MPKI, stall fraction and bandwidth at
// every way count) — plus its Table 1 classification.
//
// Usage:
//
//	lfoc-profiler -app xalancbmk06
//	lfoc-profiler -list
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/profiles"
)

func main() {
	var (
		app  = flag.String("app", "", "benchmark name")
		list = flag.Bool("list", false, "list the catalog")
	)
	flag.Parse()

	plat := machine.Skylake()
	crit := appmodel.DefaultCriteria()

	if *list {
		fmt.Printf("%-16s %-10s %s\n", "benchmark", "class", "phases")
		for _, n := range profiles.Names() {
			spec := profiles.MustGet(n)
			fmt.Printf("%-16s %-10s %d\n", n, spec.Class, len(spec.Phases))
		}
		return
	}
	if *app == "" {
		fmt.Fprintln(os.Stderr, "lfoc-profiler: need -app or -list")
		flag.Usage()
		os.Exit(2)
	}

	spec, err := profiles.Get(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfoc-profiler:", err)
		os.Exit(1)
	}
	fmt.Printf("benchmark: %s   ground-truth class: %s   phases: %d\n\n", spec.Name, spec.Class, len(spec.Phases))
	for pi := range spec.Phases {
		ph := &spec.Phases[pi]
		tbl := appmodel.BuildTable(ph, plat)
		fmt.Printf("phase %d (%s), %s:\n", pi, ph.Name, durationOf(ph))
		fmt.Printf("  %4s %9s %7s %9s %8s %8s %10s\n",
			"ways", "slowdown", "IPC", "LLCMPKC", "MPKI", "stall%", "BW(GB/s)")
		for w := 1; w <= plat.Ways; w++ {
			fmt.Printf("  %4d %9.3f %7.3f %9.2f %8.2f %8.1f %10.2f\n",
				w, tbl.Slowdown(w), tbl.IPC[w], tbl.MPKC[w], tbl.MPKI[w],
				tbl.StallFrac[w]*100, tbl.Bandwidth[w]/1e9)
		}
		fmt.Printf("  Table 1 classification: %s   critical size: %d ways\n\n",
			crit.Classify(tbl), tbl.CriticalWays(0.05))
	}
}

func durationOf(ph *appmodel.PhaseSpec) string {
	if ph.DurationInsns == 0 {
		return "endless"
	}
	return fmt.Sprintf("%.1fG instructions", float64(ph.DurationInsns)/1e9)
}
