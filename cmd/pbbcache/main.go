// Command pbbcache exposes the PBBCache-style optimal solver: given a
// list of benchmarks, it reports the optimal cache-clustering (and
// optionally the optimal strict-partitioning) solution for fairness or
// throughput, mirroring the authors' simulator tool [8].
//
// Usage:
//
//	pbbcache -apps xalancbmk06,soplex06,lbm06,povray06
//	pbbcache -apps ... -objective throughput -partitioning
//	pbbcache -random 10 -seed 42
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/machine"
	"github.com/faircache/lfoc/internal/pbb"
	"github.com/faircache/lfoc/internal/profiles"
	"github.com/faircache/lfoc/internal/workloads"
)

func main() {
	var (
		apps         = flag.String("apps", "", "comma-separated benchmark names")
		random       = flag.Int("random", 0, "use a random mix of this size instead of -apps")
		seed         = flag.Int64("seed", 1, "seed for -random")
		objectiveStr = flag.String("objective", "fairness", "fairness | throughput")
		partitioning = flag.Bool("partitioning", false, "also solve optimal strict partitioning")
		budget       = flag.Uint64("budget", 0, "node budget (0 = solver default)")
	)
	flag.Parse()

	var names []string
	switch {
	case *apps != "":
		names = strings.Split(*apps, ",")
	case *random > 0:
		names = workloads.RandomMix(*seed, *random).Benchmarks
	default:
		fmt.Fprintln(os.Stderr, "pbbcache: need -apps or -random")
		flag.Usage()
		os.Exit(2)
	}

	obj := pbb.Fairness
	switch *objectiveStr {
	case "fairness":
	case "throughput":
		obj = pbb.Throughput
	default:
		exitOn(fmt.Errorf("unknown objective %q", *objectiveStr))
	}

	plat := machine.Skylake()
	var phases []*appmodel.PhaseSpec
	for i, n := range names {
		names[i] = strings.TrimSpace(n)
		spec, err := profiles.Get(names[i])
		exitOn(err)
		phases = append(phases, &spec.Phases[0])
	}

	solver := pbb.New(plat)
	solver.NodeBudget = *budget

	fmt.Printf("workload (%d apps): %s\n", len(names), strings.Join(names, ", "))
	fmt.Printf("platform: %s (%d ways, %.1f MB LLC)\n\n", plat.Name, plat.Ways, float64(plat.LLCBytes())/1e6)

	sol, err := solver.OptimalClustering(phases, obj)
	exitOn(err)
	report("optimal clustering", names, sol)

	if *partitioning {
		psol, err := solver.OptimalPartitioning(phases, obj)
		exitOn(err)
		report("optimal partitioning", names, psol)
	}
}

func report(title string, names []string, sol pbb.Solution) {
	fmt.Printf("== %s ==\n", title)
	exact := "exact"
	if !sol.Exact {
		exact = "anytime (budget exhausted)"
	}
	fmt.Printf("search: %d nodes, %d pruned, %s\n", sol.Nodes, sol.Pruned, exact)
	for ci, c := range sol.Plan.Clusters {
		fmt.Printf("cluster %d (%d ways):", ci, c.Ways)
		for _, a := range c.Apps {
			fmt.Printf(" %s", names[a])
		}
		fmt.Println()
	}
	fmt.Print("slowdowns:")
	for i, s := range sol.Slowdowns {
		fmt.Printf(" %s=%.3f", names[i], s)
	}
	fmt.Printf("\nunfairness: %.3f   STP: %.3f\n\n", sol.Unfairness, sol.STP)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbbcache:", err)
		os.Exit(1)
	}
}
