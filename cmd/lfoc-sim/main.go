// Command lfoc-sim co-runs one workload under one policy and reports the
// paper's metrics (per-app slowdowns, unfairness, STP).
//
// Usage:
//
//	lfoc-sim -workload S3 -policy lfoc
//	lfoc-sim -workload P7 -policy dunn -scale 20
//	lfoc-sim -apps lbm06,xalancbmk06,povray06 -policy stock
//
// Policies: stock (no partitioning), dunn, lfoc (all dynamic).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/faircache/lfoc/internal/appmodel"
	"github.com/faircache/lfoc/internal/harness"
	"github.com/faircache/lfoc/internal/profiles"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "workload name (S1..S21, P1..P15)")
		apps     = flag.String("apps", "", "comma-separated benchmark list (alternative to -workload)")
		polName  = flag.String("policy", "lfoc", "policy: stock | dunn | lfoc")
		scale    = flag.Uint64("scale", 50, "time-scale divisor (1 = paper scale)")
	)
	flag.Parse()

	cfg := harness.DefaultConfig()
	cfg.Scale = *scale

	var specs []*appmodel.Spec
	var label string
	switch {
	case *workload != "":
		w, err := workloads.Get(*workload)
		exitOn(err)
		specs = w.ScaledSpecs(cfg.Scale)
		label = w.Name
	case *apps != "":
		for _, name := range strings.Split(*apps, ",") {
			s, err := profiles.Get(strings.TrimSpace(name))
			exitOn(err)
			specs = append(specs, s)
		}
		label = *apps
	default:
		fmt.Fprintln(os.Stderr, "lfoc-sim: need -workload or -apps")
		flag.Usage()
		os.Exit(2)
	}

	pol, ctrl, err := cfg.NewDynamicPolicy(*polName)
	exitOn(err)

	res, err := sim.RunDynamic(cfg.SimConfig(), specs, pol)
	exitOn(err)

	fmt.Printf("workload: %s   policy: %s   scale: 1/%d\n\n", label, *polName, cfg.Scale)
	fmt.Printf("%-16s %10s %10s %9s %6s\n", "benchmark", "CT(s)", "alone(s)", "slowdown", "runs")
	for i, s := range specs {
		fmt.Printf("%-16s %10.3f %10.3f %9.3f %6d\n",
			s.Name, res.CT[i], res.AloneCT[i], res.Slowdowns[i], len(res.RunTimes[i]))
	}
	fmt.Printf("\nunfairness: %.3f    STP: %.3f    repartitions: %d    simulated: %.1fs\n",
		res.Summary.Unfairness, res.Summary.STP, res.Repartitions, res.SimSeconds)
	if ctrl != nil {
		fmt.Println("\nLFOC final classification:")
		for i, s := range specs {
			fmt.Printf("  %-16s %s (resamples: %d)\n", s.Name, ctrl.ClassOf(i), ctrl.Resamples(i))
		}
		fmt.Println("final plan:", ctrl.Plan().Canonical())
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfoc-sim:", err)
		os.Exit(1)
	}
}
