// Command lfoc-sim co-runs one workload under one policy and reports the
// paper's metrics (per-app slowdowns, unfairness, STP), in the closed
// §5 methodology, as an open system under arrival/departure churn, or —
// with -machines — across a multi-machine cluster behind one arrival
// stream.
//
// Usage:
//
//	lfoc-sim -workload S3 -policy lfoc
//	lfoc-sim -workload P7 -policy dunn -scale 20
//	lfoc-sim -apps lbm06,xalancbmk06,povray06 -policy stock
//	lfoc-sim -workload S3 -arrivals poisson:2 -duration 10 -seed 7
//	lfoc-sim -workload S3 -arrivals uniform:0.5 -duration 10 -json out.json
//	lfoc-sim -workload S3 -sweep 0.5,1,2 -duration 10 -seed 7
//	lfoc-sim -workload S3 -arrivals poisson:4 -machines 4 -placement fair -seed 7
//	lfoc-sim -workload S3 -sweep 2,4 -machines 4 -duration 10
//	lfoc-sim -workload-spec examples/specs/diurnal-bursty.yaml
//	lfoc-sim -workload-spec spec.yaml -record-trace run.trace
//	lfoc-sim -replay-trace run.trace -machines 4 -placement fair
//	lfoc-sim -spec-sweep examples/specs/diurnal-web.yaml,examples/specs/bursty-batch.yaml
//
// Policies: stock (no partitioning), dunn, lfoc (all dynamic).
//
// -arrivals switches to the open system: applications arrive by a
// seeded Poisson process (poisson:<rate>, arrivals per simulated
// second) or a fixed cadence (uniform:<interval seconds>) over
// -duration simulated seconds, run one instruction quota, and depart.
// Results are per-app slowdowns at departure plus windowed
// unfairness/STP/throughput series. -sweep compares stock/dunn/lfoc on
// identical traces across a list of rates. -seed makes every open run
// reproducible; -json writes the machine-readable result (mirroring
// lfoc-bench -json).
//
// -machines N spreads the arrival stream across a fleet of N identical
// machines, each running its own instance of -policy; -placement picks
// the routing policy (rr = round-robin, least = least-loaded, fair =
// contention-aware via the sharing model). -machine-mix makes the fleet
// heterogeneous: a comma-separated list of <count>x<ways>way[<cores>c]
// groups (e.g. -machine-mix 2x11way,2x7way), each machine running the
// default platform resized to that way/core count, with its -policy
// instance built for its own platform. Cluster JSON output includes
// the per-machine results (with per-machine platform/cores/ways) and
// windowed series. -machines with -sweep runs the placement ×
// partitioning grid at each rate; an explicit -placement or -policy
// narrows the corresponding grid axis.
//
// Cluster runs advance the fleet through a lazy event queue: only
// machines whose next-event horizon has passed are touched per
// arrival, so 1000-machine fleets simulate in seconds while producing
// results bit-identical to an eager every-machine loop.
// -record-assignments adds the per-arrival machine assignment log to
// the JSON result (off by default — it costs O(arrivals) memory).
// -shards N splits the run into N striped sub-fleets fed by striped
// sub-streams executing concurrently; only order-independent
// placements (rr, least) qualify, the lifecycle flags are
// incompatible, and results are deterministic but intentionally
// distinct from the unsharded run (see DESIGN.md).
//
// -events, -mtbf and -autoscale (each implies cluster mode) add the
// machine lifecycle layer: -events schedules joins/drains/failures
// (drain:t=5,m=1;fail:t=7,m=0;join:t=9), -mtbf injects seeded random
// machine failures with the given mean time between failures, and
// -autoscale (i=<interval>[,up=][,down=][,min=][,max=]) scales the
// fleet with load. Drained machines migrate their residents when the
// cost-aware policy finds it worth it (-migration-cost tunes the
// tradeoff; negative disables migration); failed machines requeue them
// with exponential backoff bounded by -max-retries. The identical
// (seed, trace, schedule) inputs reproduce the identical run at any
// -machines/worker configuration. With -sweep, the lifecycle flags turn
// the placement × policy grid into a chaos sweep: every cell faces the
// same trace and the same disruption schedule.
//
// -workload-spec replaces -arrivals with a declarative scenario file
// (YAML or JSON, see docs/workload-spec.md): cohorts with diurnal rate
// curves, MMPP calm/burst episodes, heavy-tailed job sizes and weighted
// application mixes. The spec carries its own duration and seed (an
// explicit -seed overrides the spec's; an explicit -duration is a usage
// error — the spec defines it), and generation is a pure function of
// (spec, -scale), so a spec file is a complete reproducible experiment.
// -record-trace writes the open-system arrival trace (whatever its
// source) to a versioned file; -replay-trace runs from such a file
// instead of generating, reproducing the recorded arrivals bit for bit
// — record once, then replay under different -placement/-policy/
// -machines settings to compare them on the identical stream. A trace
// bakes in its -scale (replay adopts it; a conflicting explicit -scale
// is an error). -spec-sweep runs a list of spec files against every
// partitioning policy (over a cluster with -machines) — the spec-file
// counterpart of -sweep.
//
// -checkpoint <path> makes a cluster run crash-safe: the run's full
// coordinate (per-machine kernel state, placement state, lifecycle
// timeline position) is written atomically to the file — every
// -checkpoint-every simulated seconds, and once more when the run is
// interrupted. -resume <path> restarts from such a file under the
// identical flags and completes to the result the uninterrupted run
// would have produced, bit for bit (see docs/checkpoint-resume.md).
// -stop-after <s> stops a cluster run at a simulated time, emitting the
// partial result with "interrupted": true — combined with -checkpoint
// it splits a long run into resumable legs. SIGINT/SIGTERM interrupt a
// cluster run the same way: the run pauses at the next arrival
// boundary, writes the final checkpoint, emits the partial result, and
// exits 130 (a second signal kills immediately). Each of these flags
// implies cluster mode; none is compatible with -sweep/-spec-sweep or
// -shards.
//
// -cpuprofile/-memprofile write pprof profiles of the run, so perf
// investigations start from a profile instead of a guess.
//
// All usage and runtime errors exit non-zero, so CI steps built on this
// command cannot silently pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"

	"github.com/faircache/lfoc/internal/atomicfile"
	"github.com/faircache/lfoc/internal/cluster"
	"github.com/faircache/lfoc/internal/harness"
	"github.com/faircache/lfoc/internal/profiles"
	"github.com/faircache/lfoc/internal/profiling"
	"github.com/faircache/lfoc/internal/sim"
	"github.com/faircache/lfoc/internal/sim/scenario"
	"github.com/faircache/lfoc/internal/workloads"
)

// closedJSON is the -json schema of a closed run.
type closedJSON struct {
	Workload     string    `json:"workload"`
	Policy       string    `json:"policy"`
	Scale        uint64    `json:"scale"`
	Benchmarks   []string  `json:"benchmarks"`
	CT           []float64 `json:"ct_seconds"`
	AloneCT      []float64 `json:"alone_ct_seconds"`
	Slowdowns    []float64 `json:"slowdowns"`
	Unfairness   float64   `json:"unfairness"`
	STP          float64   `json:"stp"`
	Repartitions int       `json:"repartitions"`
	SimSeconds   float64   `json:"sim_seconds"`
}

// openJSON is the -json schema of an open run.
type openJSON struct {
	Workload string `json:"workload"`
	Policy   string `json:"policy"`
	Scale    uint64 `json:"scale"`
	Seed     int64  `json:"seed"`
	*sim.OpenResult
}

// clusterJSON is the -json schema of a cluster run: the cluster result
// (fleet aggregates, assignments, per-machine outcomes and series) plus
// the run parameters.
type clusterJSON struct {
	Workload string `json:"workload"`
	Policy   string `json:"policy"`
	Scale    uint64 `json:"scale"`
	Seed     int64  `json:"seed"`
	// Mix is the -machine-mix fleet specification (empty when the fleet
	// is homogeneous).
	Mix string `json:"mix,omitempty"`
	// Events and MTBF echo the -events schedule and -mtbf setting of a
	// lifecycle run (omitted otherwise, keeping lifecycle-free JSON
	// byte-identical to earlier releases).
	Events []workloads.FleetEvent `json:"events,omitempty"`
	MTBF   float64                `json:"mtbf,omitempty"`
	*cluster.Result
}

// sweepJSON is the -json schema of a -sweep comparison.
type sweepJSON struct {
	Scale uint64 `json:"scale"`
	harness.ChurnData
}

// clusterSweepJSON is the -json schema of a cluster -sweep grid (one
// entry per rate).
type clusterSweepJSON struct {
	Scale uint64                     `json:"scale"`
	Grids []harness.ClusterSweepData `json:"grids"`
}

// specSweepJSON is the -json schema of a -spec-sweep grid.
type specSweepJSON struct {
	Scale uint64 `json:"scale"`
	harness.SpecSweepData
}

// chaosSweepJSON is the -json schema of a chaos -sweep grid (one entry
// per rate).
type chaosSweepJSON struct {
	Scale uint64                   `json:"scale"`
	Grids []harness.ChaosSweepData `json:"grids"`
}

// checkpointFlags bundles the crash-safety flags of a cluster run.
type checkpointFlags struct {
	path      string  // -checkpoint
	every     float64 // -checkpoint-every
	resume    string  // -resume
	stopAfter float64 // -stop-after
}

func (c checkpointFlags) active() bool {
	return c.path != "" || c.resume != "" || c.stopAfter > 0
}

// lifecycleConfig bundles the parsed lifecycle flags.
type lifecycleConfig struct {
	events        []workloads.FleetEvent
	mtbf          float64
	autoscale     *cluster.Autoscale
	maxRetries    int
	retryBackoff  float64
	migrationCost float64
}

func (l lifecycleConfig) active() bool {
	return len(l.events) > 0 || l.mtbf > 0 || l.autoscale != nil
}

// parseAutoscale parses -autoscale: comma-separated key=value with keys
// i/interval (required), up, down, min, max.
func parseAutoscale(s string) (*cluster.Autoscale, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	as := &cluster.Autoscale{Up: 1, Down: 0.1, Min: 1}
	for _, kv := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("-autoscale: malformed field %q (want key=value)", kv)
		}
		var err error
		switch key {
		case "i", "interval":
			as.Interval, err = strconv.ParseFloat(val, 64)
		case "up":
			as.Up, err = strconv.ParseFloat(val, 64)
		case "down":
			as.Down, err = strconv.ParseFloat(val, 64)
		case "min":
			as.Min, err = strconv.Atoi(val)
		case "max":
			as.Max, err = strconv.Atoi(val)
		default:
			return nil, fmt.Errorf("-autoscale: unknown field %q (want i, up, down, min or max)", key)
		}
		if err != nil {
			return nil, fmt.Errorf("-autoscale: bad %s value %q", key, val)
		}
	}
	if as.Interval <= 0 {
		return nil, fmt.Errorf("-autoscale: needs a positive check interval (i=<seconds>)")
	}
	return as, nil
}

func main() {
	var (
		workload      = flag.String("workload", "", "workload name (S1..S21, P1..P15)")
		apps          = flag.String("apps", "", "comma-separated benchmark list (alternative to -workload)")
		polName       = flag.String("policy", "lfoc", "policy: stock | dunn | lfoc")
		scale         = flag.Uint64("scale", 50, "time-scale divisor (1 = paper scale)")
		arrivals      = flag.String("arrivals", "", "open-system arrival process: poisson:<rate> | uniform:<interval>")
		workloadSpec  = flag.String("workload-spec", "", "declarative workload spec file (YAML/JSON): generates the open-system arrival trace (see docs/workload-spec.md)")
		recordTrace   = flag.String("record-trace", "", "write the open-system arrival trace to this file (replay it with -replay-trace)")
		replayTrace   = flag.String("replay-trace", "", "replay a recorded arrival trace bit-exactly instead of generating one")
		specSweep     = flag.String("spec-sweep", "", "comma-separated workload spec files: run every spec against every policy (over a cluster with -machines)")
		duration      = flag.Float64("duration", 10, "open-system arrival window in simulated seconds")
		seed          = flag.Int64("seed", 1, "seed for the open-system arrival trace")
		sweep         = flag.String("sweep", "", "comma-separated Poisson rates: compare stock/dunn/lfoc across the load sweep")
		machines      = flag.Int("machines", 1, "cluster size: spread arrivals across this many machines")
		mix           = flag.String("machine-mix", "", "heterogeneous fleet spec: <count>x<ways>way[<cores>c],... e.g. 2x11way,2x7way (implies cluster mode)")
		placement     = flag.String("placement", "", "cluster placement policy: rr | least | fair (implies cluster mode)")
		shards        = flag.Int("shards", 0, "split the cluster into N striped sub-fleets advanced concurrently (order-independent placements rr/least only; implies cluster mode)")
		recordAssign  = flag.Bool("record-assignments", false, "include the per-arrival machine assignment log in the JSON result (costs O(arrivals) memory)")
		events        = flag.String("events", "", "fleet lifecycle schedule: kind:t=<s>[,m=<idx>];... e.g. drain:t=5,m=1;fail:t=7,m=0;join:t=9 (implies cluster mode)")
		mtbf          = flag.Float64("mtbf", 0, "mean time between random machine failures, simulated seconds (0 = none; implies cluster mode)")
		autoscale     = flag.String("autoscale", "", "load-triggered autoscaling: i=<interval>[,up=<ratio>][,down=<ratio>][,min=<n>][,max=<n>] (implies cluster mode)")
		maxRetries    = flag.Int("max-retries", 0, "failure retry budget per application (0 = default 3)")
		retryBackoff  = flag.Float64("retry-backoff", 0, "base failure-retry backoff, simulated seconds (0 = default 0.25)")
		migrationCost = flag.Float64("migration-cost", 0, "modeled live-migration cost, simulated seconds (negative disables drain migration)")
		checkpoint    = flag.String("checkpoint", "", "write the run's resumable checkpoint to this file, atomically (periodic with -checkpoint-every, always on interruption; implies cluster mode)")
		ckptEvery     = flag.Float64("checkpoint-every", 0, "simulated seconds between periodic checkpoints (0 = only on interruption; needs -checkpoint)")
		resume        = flag.String("resume", "", "resume from a checkpoint file written by -checkpoint, under the identical flags (implies cluster mode)")
		stopAfter     = flag.Float64("stop-after", 0, "stop the run at this simulated time and emit the partial result (0 = run to completion; implies cluster mode)")
		jsonOut       = flag.String("json", "", "write the machine-readable result to this file")
		cpuProf       = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf       = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stopProfiles, err := profiling.Start(*cpuProf, *memProf)
	exitOn(err)
	profileCleanup = stopProfiles
	defer stopProfiles()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if flag.NArg() > 0 {
		fail(fmt.Errorf("unexpected arguments: %s", strings.Join(flag.Args(), " ")))
	}
	if *machines < 1 {
		fail(fmt.Errorf("-machines must be at least 1, got %d", *machines))
	}
	sources := 0
	for _, set := range []bool{*arrivals != "", *workloadSpec != "", *replayTrace != ""} {
		if set {
			sources++
		}
	}
	if sources > 1 {
		fail(fmt.Errorf("-arrivals, -workload-spec and -replay-trace are mutually exclusive arrival sources"))
	}
	if *sweep != "" && sources > 0 {
		fail(fmt.Errorf("-sweep and -arrivals/-workload-spec/-replay-trace are mutually exclusive (a sweep generates its own traces)"))
	}
	if *workloadSpec != "" && explicit["duration"] {
		fail(fmt.Errorf("-duration conflicts with -workload-spec: the spec's duration_seconds defines the window"))
	}
	if *replayTrace != "" && (explicit["duration"] || explicit["seed"]) {
		fail(fmt.Errorf("-duration and -seed conflict with -replay-trace: the trace is already fixed"))
	}
	if (*workloadSpec != "" || *replayTrace != "") && (*workload != "" || *apps != "") {
		fail(fmt.Errorf("-workload/-apps conflict with -workload-spec/-replay-trace: the spec or trace defines the applications"))
	}
	if *recordTrace != "" && sources == 0 {
		fail(fmt.Errorf("-record-trace needs an open-system arrival source (-arrivals or -workload-spec)"))
	}
	ckf := checkpointFlags{path: *checkpoint, every: *ckptEvery, resume: *resume, stopAfter: *stopAfter}
	if ckf.every < 0 {
		fail(fmt.Errorf("-checkpoint-every must be nonnegative, got %v", ckf.every))
	}
	if ckf.stopAfter < 0 {
		fail(fmt.Errorf("-stop-after must be nonnegative, got %v", ckf.stopAfter))
	}
	if ckf.every > 0 && ckf.path == "" {
		fail(fmt.Errorf("-checkpoint-every needs -checkpoint"))
	}
	if ckf.active() && (*sweep != "" || *specSweep != "") {
		fail(fmt.Errorf("-checkpoint/-resume/-stop-after apply to a single cluster run, not a sweep"))
	}
	if ckf.active() && *shards > 1 {
		fail(fmt.Errorf("-checkpoint/-resume/-stop-after are incompatible with -shards (a sharded run has no single pause point)"))
	}
	clustered := *machines > 1 || *placement != "" || *mix != "" ||
		*events != "" || *mtbf > 0 || *autoscale != "" || *shards > 1 || ckf.active()
	if *placement == "" {
		*placement = "rr"
	}
	if clustered && *sweep == "" && *specSweep == "" && sources == 0 {
		fail(fmt.Errorf("cluster mode needs an open system: set -arrivals, -workload-spec, -replay-trace or -sweep"))
	}
	if *mtbf < 0 {
		fail(fmt.Errorf("-mtbf must be nonnegative, got %v", *mtbf))
	}
	fleetEvents, err := workloads.ParseFleetEvents(*events)
	exitOn(err)
	autoscaleCfg, err := parseAutoscale(*autoscale)
	exitOn(err)
	lifecycle := lifecycleConfig{
		events:        fleetEvents,
		mtbf:          *mtbf,
		autoscale:     autoscaleCfg,
		maxRetries:    *maxRetries,
		retryBackoff:  *retryBackoff,
		migrationCost: *migrationCost,
	}

	cfg := harness.DefaultConfig()
	cfg.Scale = *scale

	if *specSweep != "" {
		if *workload != "" || *apps != "" || *sweep != "" || sources > 0 || *recordTrace != "" {
			fail(fmt.Errorf("-spec-sweep runs standalone: it conflicts with -workload, -apps, -sweep, -arrivals, -workload-spec, -replay-trace and -record-trace"))
		}
		if lifecycle.active() {
			fail(fmt.Errorf("-spec-sweep does not take the lifecycle flags"))
		}
		var paths []string
		for _, p := range strings.Split(*specSweep, ",") {
			if p = strings.TrimSpace(p); p != "" {
				paths = append(paths, p)
			}
		}
		var policies []string
		if explicit["policy"] {
			policies = []string{*polName}
		}
		d, err := harness.SpecSweep(cfg, paths, policies, *machines, *placement)
		exitOn(err)
		fmt.Println(d.Render())
		writeJSON(*jsonOut, specSweepJSON{Scale: cfg.Scale, SpecSweepData: d})
		return
	}

	// With -machine-mix the fleet size comes from the mix; an explicit
	// -machines must agree with it (checked by the cluster layer), while
	// the flag's default of 1 should not be mistaken for a constraint.
	fleetSize := *machines
	if *mix != "" && !explicit["machines"] {
		fleetSize = 0
	}

	var w workloads.Workload
	switch {
	case *workload != "":
		var err error
		w, err = workloads.Get(*workload)
		exitOn(err)
	case *apps != "":
		var names []string
		for _, n := range strings.Split(*apps, ",") {
			name := strings.TrimSpace(n)
			if _, err := profiles.Get(name); err != nil {
				exitOn(err)
			}
			names = append(names, name)
		}
		w = workloads.Workload{Name: *apps, Benchmarks: names}
	case *workloadSpec != "" || *replayTrace != "":
		// The spec or trace carries its own applications.
	default:
		fail(fmt.Errorf("need -workload, -apps, -workload-spec or -replay-trace"))
	}

	// Open and cluster runs build their scenario here — one place for
	// every arrival source (-arrivals generation, -workload-spec
	// expansion, -replay-trace) — so -record-trace serializes whatever
	// stream the run is about to face.
	var scn *scenario.Open
	scnSeed := *seed
	if *sweep == "" && sources > 0 {
		switch {
		case *replayTrace != "":
			tr, err := workloads.ReadTraceFile(*replayTrace)
			exitOn(err)
			if explicit["scale"] && *scale != tr.Scale {
				fail(fmt.Errorf("-scale %d conflicts with the trace's recorded scale %d (traces bake their scale into the specs)", *scale, tr.Scale))
			}
			cfg.Scale = tr.Scale
			scn, err = tr.Scenario()
			exitOn(err)
			scnSeed = 0 // a replayed trace is not reseedable
			w.Name = scn.Name()
		case *workloadSpec != "":
			s, err := workloads.LoadSpec(*workloadSpec)
			exitOn(err)
			if explicit["seed"] {
				s.Seed = *seed
			}
			scn, err = s.Scenario(cfg.Scale)
			exitOn(err)
			scnSeed = s.Seed
			w.Name = scn.Name()
		default:
			scn, scnSeed = openScenario(cfg, w, *arrivals, *duration, *seed)
		}
		if *recordTrace != "" {
			tr := &workloads.Trace{Name: scn.Name(), Scale: cfg.Scale, Arrivals: scn.Arrivals()}
			exitOn(workloads.WriteTraceFile(*recordTrace, tr))
			fmt.Fprintln(os.Stderr, "lfoc-sim: recorded", *recordTrace)
		}
	}

	switch {
	case *sweep != "":
		if *workload == "" {
			fail(fmt.Errorf("-sweep needs -workload"))
		}
		var rates []float64
		for _, s := range strings.Split(*sweep, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			exitOn(err)
			rates = append(rates, r)
		}
		if clustered {
			// The grid defaults to every placement × every policy; an
			// explicit -placement or -policy narrows its axis (and an
			// invalid name fails the run rather than being ignored).
			var placements, policies []string
			if explicit["placement"] {
				placements = []string{*placement}
			}
			if explicit["policy"] {
				policies = []string{*polName}
			}
			if lifecycle.active() {
				// Chaos sweep: the same grid, every cell facing the same
				// trace plus the same disruption schedule.
				out := chaosSweepJSON{Scale: cfg.Scale}
				for _, rate := range rates {
					d, err := harness.ChaosSweep(cfg, w.Name, fleetSize, *mix, placements, policies,
						[]float64{lifecycle.mtbf}, lifecycle.events, lifecycle.migrationCost, rate, *duration, *seed)
					exitOn(err)
					fmt.Println(d.Render())
					out.Grids = append(out.Grids, d)
				}
				writeJSON(*jsonOut, out)
				break
			}
			out := clusterSweepJSON{Scale: cfg.Scale}
			for _, rate := range rates {
				d, err := harness.ClusterSweep(cfg, w.Name, fleetSize, *mix, placements, policies, rate, *duration, *seed)
				exitOn(err)
				fmt.Println(d.Render())
				out.Grids = append(out.Grids, d)
			}
			writeJSON(*jsonOut, out)
		} else {
			d, err := harness.Churn(cfg, w.Name, rates, *duration, *seed)
			exitOn(err)
			fmt.Println(d.Render())
			writeJSON(*jsonOut, sweepJSON{Scale: cfg.Scale, ChurnData: d})
		}
	case clustered:
		runCluster(cfg, w, *polName, *placement, fleetSize, *mix, scn, scnSeed, *jsonOut, lifecycle, *shards, *recordAssign, ckf)
	case scn != nil:
		runOpen(cfg, w, *polName, scn, scnSeed, *jsonOut)
	default:
		runClosed(cfg, w, *polName, *jsonOut)
	}
}

func runClosed(cfg harness.Config, w workloads.Workload, polName, jsonOut string) {
	specs := w.ScaledSpecs(cfg.Scale)
	pol, ctrl, err := cfg.NewDynamicPolicy(polName)
	exitOn(err)

	res, err := sim.RunDynamic(cfg.SimConfig(), specs, pol)
	exitOn(err)

	fmt.Printf("workload: %s   policy: %s   scale: 1/%d\n\n", w.Name, polName, cfg.Scale)
	fmt.Printf("%-16s %10s %10s %9s %6s\n", "benchmark", "CT(s)", "alone(s)", "slowdown", "runs")
	for i, s := range specs {
		fmt.Printf("%-16s %10.3f %10.3f %9.3f %6d\n",
			s.Name, res.CT[i], res.AloneCT[i], res.Slowdowns[i], len(res.RunTimes[i]))
	}
	fmt.Printf("\nunfairness: %.3f    STP: %.3f    repartitions: %d    simulated: %.1fs\n",
		res.Summary.Unfairness, res.Summary.STP, res.Repartitions, res.SimSeconds)
	if ctrl != nil {
		fmt.Println("\nLFOC final classification:")
		for i, s := range specs {
			id := res.FinalMonIDs[i]
			fmt.Printf("  %-16s %s (resamples: %d)\n", s.Name, ctrl.ClassOf(id), ctrl.Resamples(id))
		}
		fmt.Println("final plan:", ctrl.Plan().Canonical())
	}

	benchNames := make([]string, len(specs))
	for i, s := range specs {
		benchNames[i] = s.Name
	}
	writeJSON(jsonOut, closedJSON{
		Workload:     w.Name,
		Policy:       polName,
		Scale:        cfg.Scale,
		Benchmarks:   benchNames,
		CT:           res.CT,
		AloneCT:      res.AloneCT,
		Slowdowns:    res.Slowdowns,
		Unfairness:   res.Summary.Unfairness,
		STP:          res.Summary.STP,
		Repartitions: res.Repartitions,
		SimSeconds:   res.SimSeconds,
	})
}

// openScenario builds the open-system scenario selected by -arrivals.
// The returned seed is 0 for unseeded (uniform) traces.
func openScenario(cfg harness.Config, w workloads.Workload, arrivals string, duration float64, seed int64) (*scenario.Open, int64) {
	kind, arg, ok := strings.Cut(arrivals, ":")
	if !ok {
		fail(fmt.Errorf("-arrivals %q: want poisson:<rate> or uniform:<interval>", arrivals))
	}
	val, err := strconv.ParseFloat(arg, 64)
	exitOn(err)

	var scn *scenario.Open
	switch kind {
	case "poisson":
		scn, err = w.OpenScenario(val, duration, seed, cfg.Scale)
	case "uniform":
		if val <= 0 {
			err = fmt.Errorf("-arrivals uniform: interval must be positive")
		} else {
			// Arrivals at i*interval for every i with i*interval < duration.
			scn, err = w.UniformScenario(val, int(math.Ceil(duration/val)), cfg.Scale)
		}
		seed = 0 // a uniform trace is unseeded; don't imply otherwise
	default:
		err = fmt.Errorf("-arrivals %q: unknown process %q", arrivals, kind)
	}
	exitOn(err)
	return scn, seed
}

func runOpen(cfg harness.Config, w workloads.Workload, polName string, scn *scenario.Open, seed int64, jsonOut string) {
	pol, _, err := cfg.NewDynamicPolicy(polName)
	exitOn(err)
	res, err := sim.RunOpen(cfg.SimConfig(), scn, pol)
	exitOn(err)

	fmt.Printf("scenario: %s   policy: %s   scale: 1/%d   seed: %d\n\n", res.Scenario, polName, cfg.Scale, seed)
	fmt.Printf("%-16s %10s %10s %10s %9s %8s\n", "benchmark", "arrived", "admitted", "departed", "slowdown", "wait(s)")
	for _, a := range res.Apps {
		admitted, departed, slowdown, wait := "-", "-", "-", "-"
		if a.AdmittedAt >= 0 {
			admitted = fmt.Sprintf("%.3f", a.AdmittedAt)
			wait = fmt.Sprintf("%.3f", a.WaitSeconds)
		}
		if a.DepartedAt >= 0 {
			departed = fmt.Sprintf("%.3f", a.DepartedAt)
			slowdown = fmt.Sprintf("%.3f", a.Slowdown)
		}
		fmt.Printf("%-16s %10.3f %10s %10s %9s %8s\n",
			a.Name, a.ArrivedAt, admitted, departed, slowdown, wait)
	}
	fmt.Printf("\ndeparted: %d/%d    mean slowdown: %.3f    mean wait: %.3fs    peak active: %d\n",
		res.Departed, len(res.Apps), res.MeanSlowdown, res.MeanWait, res.PeakActive)
	fmt.Printf("windowed means: unfairness %.3f    STP %.3f    throughput %.3f runs/s\n",
		res.Series.MeanUnfairness(), res.Series.MeanSTP(), res.Series.TotalThroughput())
	fmt.Printf("repartitions: %d    simulated: %.1fs    windows: %d × %.3fs\n",
		res.Repartitions, res.SimSeconds, len(res.Series.Points), res.Series.Width)

	writeJSON(jsonOut, openJSON{Workload: w.Name, Policy: polName, Scale: cfg.Scale, Seed: seed, OpenResult: res})
}

func runCluster(cfg harness.Config, w workloads.Workload, polName, placement string, machines int, mix string, scn *scenario.Open, seed int64, jsonOut string, lc lifecycleConfig, shards int, recordAssignments bool, ckf checkpointFlags) {
	pl, err := cluster.NewPlacement(placement, cfg.Plat)
	exitOn(err)
	ccfg := cluster.Config{Sim: cfg.SimConfig(), Machines: machines, Placement: pl,
		Shards: shards, RecordAssignments: recordAssignments, StopAfter: ckf.stopAfter}
	if ckf.path != "" {
		ccfg.Checkpoint = &cluster.CheckpointConfig{Path: ckf.path, Every: ckf.every}
	}
	if ckf.resume != "" {
		ck, err := cluster.ReadCheckpoint(ckf.resume)
		exitOn(err)
		ccfg.Resume = ck
	}
	// SIGINT/SIGTERM interrupt the run cooperatively: the fleet pauses at
	// the next arrival boundary, the final checkpoint (if configured) is
	// written, and the partial result is emitted. A second signal kills
	// immediately. Sharded runs have no single pause point and keep the
	// default signal disposition.
	var signaled atomic.Bool
	if shards <= 1 {
		cancel := &sim.CancelFlag{}
		ccfg.Cancel = cancel
		sigc := make(chan os.Signal, 2)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sigc)
		go func() {
			<-sigc
			signaled.Store(true)
			fmt.Fprintln(os.Stderr, "lfoc-sim: interrupt — pausing at the next arrival boundary (send again to kill)")
			cancel.Cancel()
			<-sigc
			os.Exit(130)
		}()
	}
	if mix != "" {
		ccfg.Fleet, err = cluster.ParseMachineMix(mix, ccfg.Sim)
		exitOn(err)
	}
	sims, err := ccfg.MachineConfigs()
	exitOn(err)
	if lc.active() {
		cevents, err := harness.ClusterEvents(lc.events)
		exitOn(err)
		ccfg.Lifecycle = &cluster.Lifecycle{
			Events:        cevents,
			MTBF:          lc.mtbf,
			FailureSeed:   seed,
			MaxRetries:    lc.maxRetries,
			RetryBackoff:  lc.retryBackoff,
			MigrationCost: lc.migrationCost,
			Autoscale:     lc.autoscale,
			JoinPolicy: func(i int, mc sim.Config) (sim.Dynamic, error) {
				pol, _, err := cfg.NewDynamicPolicyFor(polName, mc.Plat)
				return pol, err
			},
		}
	}
	res, err := cluster.Run(ccfg,
		scn, func(i int) (sim.Dynamic, error) {
			// Per-machine platform: a heterogeneous fleet needs each
			// policy instance built for its machine's own way count.
			pol, _, err := cfg.NewDynamicPolicyFor(polName, sims[i].Plat)
			return pol, err
		})
	exitOn(err)

	fleet := fmt.Sprintf("%d", res.Machines)
	if mix != "" {
		fleet = fmt.Sprintf("%d (%s)", res.Machines, cluster.MixNames(sims))
	}
	if res.Shards > 1 {
		fleet += fmt.Sprintf("   shards: %d", res.Shards)
	}
	fmt.Printf("scenario: %s   policy: %s   placement: %s   machines: %s   scale: 1/%d   seed: %d\n\n",
		res.Scenario, polName, res.Placement, fleet, cfg.Scale, seed)
	fmt.Printf("%-8s %6s %6s %9s %9s %9s %10s %10s %10s %10s\n",
		"machine", "cores", "ways", "arrivals", "departed", "remaining", "wait p50", "wait p95", "wait max", "simulated")
	for _, m := range res.PerMachine {
		fmt.Printf("%-8d %6d %6d %9d %9d %9d %10.3f %10.3f %10.3f %9.1fs\n",
			m.Index, m.Cores, m.Ways, m.Arrivals, m.Open.Departed, m.Open.Remaining,
			m.Wait.P50, m.Wait.P95, m.Wait.Max, m.Open.SimSeconds)
	}
	fmt.Printf("\ncluster: departed %d/%d    mean slowdown: %.3f    mean wait: %.3fs    peak active: %d\n",
		res.Departed, res.Departed+res.Remaining, res.MeanSlowdown, res.MeanWait, res.PeakActive)
	fmt.Printf("windowed means: unfairness %.3f    STP %.3f    throughput %.3f runs/s\n",
		res.Series.MeanUnfairness(), res.Series.MeanSTP(), res.Series.TotalThroughput())
	fmt.Printf("repartitions: %d    simulated: %.1fs    windows: %d × %.3fs\n",
		res.Repartitions, res.SimSeconds, len(res.Series.Points), res.Series.Width)
	if l := res.Lifecycle; l != nil {
		fmt.Printf("\nlifecycle: %d events (%d joins, %d drains, %d failures",
			l.Events, l.Joins, l.Drains, l.Failures)
		if l.AutoscaleActions > 0 {
			fmt.Printf("; %d autoscale actions", l.AutoscaleActions)
		}
		fmt.Printf(")    availability: %.3f\n", l.Availability)
		fmt.Printf("disrupted: %d    migrated: %d    requeued: %d (retries %d)    dead-lettered: %d    unplaced: %d\n",
			l.Disruptions, l.Migrations, l.Requeues, l.Retries, l.DeadLettered, l.Unplaced)
		fmt.Printf("fleet: %d/%d machines up at end    mean migration latency: %.3fs    mean requeue latency: %.3fs\n",
			l.FinalMachines, l.FleetSize, l.MeanMigrationLatency, l.MeanRequeueLatency)
		for _, m := range res.PerMachine {
			if m.State == "up" {
				continue
			}
			fmt.Printf("  machine %d: %s at %.3fs\n", m.Index, m.State, m.DownAt)
		}
	}

	if res.Interrupted {
		fmt.Printf("\ninterrupted at %.1fs simulated", res.SimSeconds)
		if ckf.path != "" {
			fmt.Printf("; resume with -resume %s", ckf.path)
		}
		fmt.Println()
	}

	writeJSON(jsonOut, clusterJSON{Workload: w.Name, Policy: polName, Scale: cfg.Scale, Seed: seed, Mix: mix,
		Events: lc.events, MTBF: lc.mtbf, Result: res})

	// A signal-interrupted run exits like an interrupted shell command
	// (130), after the partial result and checkpoint are safely out. An
	// explicit -stop-after boundary is a normal, successful exit.
	if res.Interrupted && signaled.Load() {
		if profileCleanup != nil {
			profileCleanup()
		}
		os.Exit(130)
	}
}

func writeJSON(path string, v any) {
	if path == "" {
		return
	}
	buf, err := json.MarshalIndent(v, "", "  ")
	exitOn(err)
	// Atomic (temp+rename): an interrupt or crash mid-write can never
	// leave a truncated result file behind.
	exitOn(atomicfile.WriteFile(path, append(buf, '\n'), 0o644))
	fmt.Fprintln(os.Stderr, "lfoc-sim: wrote", path)
}

// profileCleanup finishes any in-flight profiles before a non-zero
// exit (deferred functions do not run across os.Exit).
var profileCleanup func()

// fail reports a usage error and exits non-zero, printing the flag
// summary for context.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "lfoc-sim:", err)
	flag.Usage()
	if profileCleanup != nil {
		profileCleanup()
	}
	os.Exit(2)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfoc-sim:", err)
		if profileCleanup != nil {
			profileCleanup()
		}
		os.Exit(1)
	}
}
