package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"github.com/faircache/lfoc/internal/cluster"
)

// The end-to-end crash-safety contract: SIGINT a running cluster run,
// and the process exits 130 after emitting a partial JSON result marked
// "interrupted": true and a valid, resumable checkpoint; resuming that
// checkpoint completes cleanly.
func TestInterruptWritesCheckpointAndPartialResult(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a child process")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "lfoc-sim")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	ckpt := filepath.Join(dir, "run.ckpt")
	jsonOut := filepath.Join(dir, "run.json")
	args := []string{
		"-workload", "S3", "-arrivals", "poisson:2", "-duration", "20000", "-seed", "7",
		"-machines", "3", "-placement", "least", "-policy", "stock",
		"-checkpoint", ckpt, "-checkpoint-every", "5", "-json", jsonOut,
	}
	cmd := exec.Command(bin, args...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Interrupt once the first periodic checkpoint proves the run is
	// well underway.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared within 60s")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}

	err := cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("interrupted run exited %v, want exit code 130", err)
	}
	if code := ee.ExitCode(); code != 130 {
		t.Fatalf("interrupted run exited %d, want 130", code)
	}

	data, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatalf("interrupted run wrote no JSON result: %v", err)
	}
	var res struct {
		Interrupted bool `json:"interrupted"`
		Departed    int  `json:"departed"`
	}
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("partial result is not valid JSON: %v", err)
	}
	if !res.Interrupted {
		t.Error(`partial result lacks "interrupted": true`)
	}

	ck, err := cluster.ReadCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("interrupted run left no valid checkpoint: %v", err)
	}
	if ck.NextArrival() <= 0 {
		t.Errorf("checkpoint at arrival %d, want progress before the interrupt", ck.NextArrival())
	}

	// The checkpoint must actually resume: same run flags plus -resume,
	// with a near -stop-after boundary so the test stays fast.
	resume := exec.Command(bin,
		"-workload", "S3", "-arrivals", "poisson:2", "-duration", "20000", "-seed", "7",
		"-machines", "3", "-placement", "least", "-policy", "stock",
		"-resume", ckpt, "-stop-after", "1",
		"-json", filepath.Join(dir, "resumed.json"))
	if out, err := resume.CombinedOutput(); err != nil {
		t.Fatalf("resume failed: %v\n%s", err, out)
	}
}
