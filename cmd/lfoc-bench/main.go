// Command lfoc-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	lfoc-bench -all                  # every artifact (slow at scale 1)
//	lfoc-bench -fig 6 -scale 50      # one figure at 1/50 time scale
//	lfoc-bench -table 2
//	lfoc-bench -fig 6 -workloads S1,S2,S3
//
// The -scale flag divides all instruction quantities and the partitioner
// period by the given factor (cadence ratios preserved); EXPERIMENTS.md
// records the scale used for the published numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/faircache/lfoc/internal/harness"
)

func main() {
	var (
		fig       = flag.Int("fig", 0, "figure to regenerate (1..7); 0 = none")
		table     = flag.Int("table", 0, "table to regenerate (2); 0 = none")
		all       = flag.Bool("all", false, "regenerate every artifact")
		scale     = flag.Uint64("scale", 50, "time-scale divisor (1 = paper scale)")
		mixes     = flag.Int("mixes", 20, "random mixes for Fig. 2")
		mixesPerN = flag.Int("mixes-per-n", 5, "random mixes per size for Fig. 3")
		wl        = flag.String("workloads", "", "comma-separated workload subset for Figs. 6/7")
		budget    = flag.Uint64("budget", 0, "optimal-solver node budget override")
		ablation  = flag.Bool("ablation", false, "run the Algorithm 1 parameter sweep")
		ucp       = flag.Bool("ucp", false, "run the UCP-vs-LFOC supplement (8-app workloads)")
	)
	flag.Parse()

	cfg := harness.DefaultConfig()
	cfg.Scale = *scale
	if *budget > 0 {
		cfg.SolverBudgetSmall = *budget
		cfg.SolverBudgetLarge = *budget
	}
	var names []string
	if *wl != "" {
		names = strings.Split(*wl, ",")
	}

	run := func(n int) {
		switch n {
		case 1:
			fmt.Println(harness.Fig1(cfg).Render())
		case 2:
			d, err := harness.Fig2(cfg, *mixes)
			exitOn(err)
			fmt.Println(d.Render())
		case 3:
			d, err := harness.Fig3(cfg, *mixesPerN)
			exitOn(err)
			fmt.Println(d.Render())
		case 4:
			fmt.Println(harness.Fig4(cfg, 160).Render())
		case 5:
			fmt.Println(harness.Fig5(cfg).Render())
		case 6:
			d, err := harness.Fig6(cfg, names)
			exitOn(err)
			fmt.Println(d.Render())
		case 7:
			d, err := harness.Fig7(cfg, names)
			exitOn(err)
			fmt.Println(d.Render())
		default:
			exitOn(fmt.Errorf("unknown figure %d", n))
		}
	}

	did := false
	if *all {
		for n := 1; n <= 7; n++ {
			run(n)
		}
		d, err := harness.Table2(cfg, 200)
		exitOn(err)
		fmt.Println(d.Render())
		did = true
	}
	if *fig > 0 {
		run(*fig)
		did = true
	}
	if *table == 2 {
		d, err := harness.Table2(cfg, 200)
		exitOn(err)
		fmt.Println(d.Render())
		did = true
	} else if *table != 0 {
		exitOn(fmt.Errorf("unknown table %d (only Table 2 is an experiment; Table 1 is the classifier's thresholds)", *table))
	}
	if *ablation {
		d, err := harness.AblationParams(cfg, names)
		exitOn(err)
		fmt.Println(d.Render())
		did = true
	}
	if *ucp {
		d, err := harness.SupplementUCP(cfg, names)
		exitOn(err)
		fmt.Println(d.Render())
		did = true
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfoc-bench:", err)
		os.Exit(1)
	}
}
