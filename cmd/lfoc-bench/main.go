// Command lfoc-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	lfoc-bench -all                  # every artifact (slow at scale 1)
//	lfoc-bench -fig 6 -scale 50      # one figure at 1/50 time scale
//	lfoc-bench -table 2
//	lfoc-bench -fig 6 -workloads S1,S2,S3
//	lfoc-bench -table 2 -json BENCH_table2.json   # machine-readable baseline
//	lfoc-bench -sim -sim-json BENCH_sim.json      # simulator-throughput baseline
//
// The -scale flag divides all instruction quantities and the partitioner
// period by the given factor (cadence ratios preserved); EXPERIMENTS.md
// records the scale used for the published numbers. The -json flag
// additionally writes the Table 2 timings as a JSON baseline so the perf
// trajectory can be tracked across revisions (CI commits one per run),
// and -sim/-sim-json do the same for the simulator kernel (closed
// batch, open churn, 4-machine cluster — ticks/sec and allocs/run).
// -cpuprofile/-memprofile write pprof profiles, so perf work starts
// from a profile instead of a guess.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/faircache/lfoc/internal/atomicfile"
	"github.com/faircache/lfoc/internal/harness"
	"github.com/faircache/lfoc/internal/profiling"
)

// table2Baseline is the schema of the -json perf-baseline file.
type table2Baseline struct {
	GeneratedAt  string              `json:"generated_at"`
	GoVersion    string              `json:"go_version"`
	GOMAXPROCS   int                 `json:"gomaxprocs"`
	Scale        uint64              `json:"scale"`
	ItersPerSize int                 `json:"iters_per_size"`
	Rows         []harness.Table2Row `json:"rows"`
}

func writeTable2JSON(path string, d harness.Table2Data, scale uint64, iters int) error {
	b := table2Baseline{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Scale:        scale,
		ItersPerSize: iters,
		Rows:         d.Rows,
	}
	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	// Atomic (temp+rename): an interrupted benchmark run can never leave
	// a truncated baseline behind for benchdiff to choke on.
	return atomicfile.WriteFile(path, append(buf, '\n'), 0o644)
}

func main() {
	var (
		fig       = flag.Int("fig", 0, "figure to regenerate (1..7); 0 = none")
		table     = flag.Int("table", 0, "table to regenerate (2); 0 = none")
		all       = flag.Bool("all", false, "regenerate every artifact")
		scale     = flag.Uint64("scale", 50, "time-scale divisor (1 = paper scale)")
		mixes     = flag.Int("mixes", 20, "random mixes for Fig. 2")
		mixesPerN = flag.Int("mixes-per-n", 5, "random mixes per size for Fig. 3")
		wl        = flag.String("workloads", "", "comma-separated workload subset for Figs. 6/7")
		budget    = flag.Uint64("budget", 0, "optimal-solver node budget override")
		ablation  = flag.Bool("ablation", false, "run the Algorithm 1 parameter sweep")
		ucp       = flag.Bool("ucp", false, "run the UCP-vs-LFOC supplement (8-app workloads)")
		iters     = flag.Int("iters", 200, "timing iterations per size for Table 2")
		jsonOut   = flag.String("json", "", "also write Table 2 timings as a JSON baseline to this file")
		simBench  = flag.Bool("sim", false, "run the simulator-throughput benchmarks (closed batch, open churn, 4-machine cluster)")
		simIters  = flag.Int("sim-iters", 5, "timing iterations per simulator-throughput row")
		simJSON   = flag.String("sim-json", "", "also write the simulator-throughput rows as a JSON baseline to this file")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stopProfiles, err := profiling.Start(*cpuProf, *memProf)
	exitOn(err)
	profileCleanup = stopProfiles
	defer stopProfiles()

	cfg := harness.DefaultConfig()
	cfg.Scale = *scale
	if *budget > 0 {
		cfg.SolverBudgetSmall = *budget
		cfg.SolverBudgetLarge = *budget
	}
	var names []string
	if *wl != "" {
		names = strings.Split(*wl, ",")
	}

	run := func(n int) {
		switch n {
		case 1:
			fmt.Println(harness.Fig1(cfg).Render())
		case 2:
			d, err := harness.Fig2(cfg, *mixes)
			exitOn(err)
			fmt.Println(d.Render())
		case 3:
			d, err := harness.Fig3(cfg, *mixesPerN)
			exitOn(err)
			fmt.Println(d.Render())
		case 4:
			fmt.Println(harness.Fig4(cfg, 160).Render())
		case 5:
			fmt.Println(harness.Fig5(cfg).Render())
		case 6:
			d, err := harness.Fig6(cfg, names)
			exitOn(err)
			fmt.Println(d.Render())
		case 7:
			d, err := harness.Fig7(cfg, names)
			exitOn(err)
			fmt.Println(d.Render())
		default:
			exitOn(fmt.Errorf("unknown figure %d", n))
		}
	}

	runTable2 := func() {
		d, err := harness.Table2(cfg, *iters)
		exitOn(err)
		fmt.Println(d.Render())
		if *jsonOut != "" {
			exitOn(writeTable2JSON(*jsonOut, d, cfg.Scale, *iters))
			fmt.Fprintln(os.Stderr, "lfoc-bench: wrote", *jsonOut)
		}
	}

	did := false
	if *all {
		for n := 1; n <= 7; n++ {
			run(n)
		}
		runTable2()
		did = true
	}
	if *fig > 0 {
		run(*fig)
		did = true
	}
	if *table == 2 {
		runTable2()
		did = true
	} else if *table != 0 {
		exitOn(fmt.Errorf("unknown table %d (only Table 2 is an experiment; Table 1 is the classifier's thresholds)", *table))
	}
	if *ablation {
		d, err := harness.AblationParams(cfg, names)
		exitOn(err)
		fmt.Println(d.Render())
		did = true
	}
	if *ucp {
		d, err := harness.SupplementUCP(cfg, names)
		exitOn(err)
		fmt.Println(d.Render())
		did = true
	}
	if *simBench {
		d, err := harness.SimBench(cfg, *simIters)
		exitOn(err)
		fmt.Println(d.Render())
		if *simJSON != "" {
			exitOn(writeSimJSON(*simJSON, d, cfg.Scale, *simIters))
			fmt.Fprintln(os.Stderr, "lfoc-bench: wrote", *simJSON)
		}
		did = true
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}
}

// simBaseline is the schema of the -sim-json perf-baseline file.
type simBaseline struct {
	GeneratedAt string                `json:"generated_at"`
	GoVersion   string                `json:"go_version"`
	GOMAXPROCS  int                   `json:"gomaxprocs"`
	Scale       uint64                `json:"scale"`
	ItersPerRow int                   `json:"iters_per_row"`
	Rows        []harness.SimBenchRow `json:"rows"`
}

func writeSimJSON(path string, d harness.SimBenchData, scale uint64, iters int) error {
	b := simBaseline{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Scale:       scale,
		ItersPerRow: iters,
		Rows:        d.Rows,
	}
	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	// Atomic (temp+rename): an interrupted benchmark run can never leave
	// a truncated baseline behind for benchdiff to choke on.
	return atomicfile.WriteFile(path, append(buf, '\n'), 0o644)
}

// profileCleanup finishes any in-flight profiles before a non-zero
// exit (deferred functions do not run across os.Exit).
var profileCleanup func()

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfoc-bench:", err)
		if profileCleanup != nil {
			profileCleanup()
		}
		os.Exit(1)
	}
}
